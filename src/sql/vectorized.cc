#include "sql/vectorized.h"

#include <algorithm>
#include <atomic>
#include <compare>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "common/strings.h"
#include "sql/exec_common.h"
#include "sql/planner.h"

namespace qc::sql {

namespace {

using storage::ColumnStore;
using storage::Row;
using storage::RowId;
using storage::Table;

// ---------------------------------------------------------------------------
// Engine knobs and counters
// ---------------------------------------------------------------------------

std::atomic<bool> g_enabled{true};
std::atomic<size_t> g_parallel_threshold{65536};
std::atomic<size_t> g_scan_threads{0};  // 0 = auto (QC_SCAN_THREADS or hardware)

constexpr size_t kMaxScanThreads = 16;

struct StatCounters {
  std::atomic<uint64_t> queries_vectorized{0};
  std::atomic<uint64_t> queries_fallback{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> parallel_scans{0};
  std::atomic<uint64_t> conjunct_reorders{0};
};
StatCounters g_stats;

size_t EffectiveScanThreads() {
  size_t n = g_scan_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    static const size_t env_or_hw = [] {
      if (const char* env = std::getenv("QC_SCAN_THREADS")) {
        const long v = std::atol(env);
        if (v > 0) return static_cast<size_t>(v);
      }
      const unsigned hw = std::thread::hardware_concurrency();
      return static_cast<size_t>(hw == 0 ? 1 : hw);
    }();
    n = env_or_hw;
  }
  return std::min(std::max<size_t>(n, 1), kMaxScanThreads);
}

// ---------------------------------------------------------------------------
// Three-valued predicate states
// ---------------------------------------------------------------------------

constexpr uint8_t kTriF = 0;
constexpr uint8_t kTriT = 1;
constexpr uint8_t kTriU = 2;

inline uint8_t TriNot(uint8_t a) { return a == kTriU ? kTriU : (a == kTriT ? kTriF : kTriT); }
inline uint8_t TriAnd(uint8_t a, uint8_t b) {
  if (a == kTriF || b == kTriF) return kTriF;
  if (a == kTriU || b == kTriU) return kTriU;
  return kTriT;
}
inline uint8_t TriOr(uint8_t a, uint8_t b) {
  if (a == kTriT || b == kTriT) return kTriT;
  if (a == kTriU || b == kTriU) return kTriU;
  return kTriF;
}

/// One batch of candidate rows (all live).
struct Batch {
  const Table* table;
  const RowId* rows;
  size_t n;
};

/// Compiled predicate node: fills `out[0..n)` with kTriF/kTriT/kTriU,
/// column-at-a-time. Nodes are immutable after compilation and shared by
/// all scan workers.
struct VecNode {
  virtual ~VecNode() = default;
  virtual void Eval(const Batch& b, uint8_t* out) const = 0;
};
using VecNodePtr = std::unique_ptr<VecNode>;

// ---------------------------------------------------------------------------
// Typed kernels
// ---------------------------------------------------------------------------

/// Run `f(row) -> tri` over non-null cells; null cells are Unknown.
template <typename Fn>
inline void ForBatchNonNull(const ColumnStore& col, const Batch& b, uint8_t* out, Fn f) {
  for (size_t i = 0; i < b.n; ++i) {
    const RowId r = b.rows[i];
    out[i] = col.IsNull(r) ? kTriU : f(r);
  }
}

/// Comparison loop specialized per (value getter, constant type, operator).
template <typename Get, typename T>
inline void CmpLoop(BinaryOp op, const ColumnStore& col, const Batch& b, uint8_t* out,
                    Get get, T c) {
  switch (op) {
    case BinaryOp::kEq:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) == c ? kTriT : kTriF; });
      break;
    case BinaryOp::kNe:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) != c ? kTriT : kTriF; });
      break;
    case BinaryOp::kLt:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) < c ? kTriT : kTriF; });
      break;
    case BinaryOp::kLe:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) <= c ? kTriT : kTriF; });
      break;
    case BinaryOp::kGt:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) > c ? kTriT : kTriF; });
      break;
    case BinaryOp::kGe:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) >= c ? kTriT : kTriF; });
      break;
    default:
      throw BindError("not a comparison operator");
  }
}

/// Fixed truth value for every row (comparison against a NULL constant, or
/// a constant-folded column-less conjunct).
struct TriConstNode final : VecNode {
  uint8_t tri;
  explicit TriConstNode(uint8_t t) : tri(t) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    std::fill(out, out + b.n, tri);
  }
};

/// Cross-type-class comparison (numeric column vs string constant or vice
/// versa): Value's total order ranks the classes, so every non-null cell
/// compares the same way. NULL cells stay Unknown.
struct FixedRankCmpNode final : VecNode {
  uint32_t col;
  uint8_t tri_nonnull;
  FixedRankCmpNode(uint32_t c, uint8_t t) : col(c), tri_nonnull(t) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    for (size_t i = 0; i < b.n; ++i) {
      out[i] = cs.IsNull(b.rows[i]) ? kTriU : tri_nonnull;
    }
  }
};

/// column OP constant, same type class. The constant is pre-coerced at
/// compile time; Eval dispatches once on the column type, then runs the
/// tight typed loop.
struct CmpConstNode final : VecNode {
  uint32_t col;
  BinaryOp op;
  Value c;
  CmpConstNode(uint32_t col_, BinaryOp op_, Value c_) : col(col_), op(op_), c(std::move(c_)) {}

  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    switch (cs.type()) {
      case ValueType::kInt:
        if (c.is_int()) {
          const int64_t cv = c.as_int();
          CmpLoop(op, cs, b, out, [&cs](RowId r) { return cs.GetInt(r); }, cv);
        } else {
          const double cv = c.numeric();
          CmpLoop(op, cs, b, out,
                  [&cs](RowId r) { return static_cast<double>(cs.GetInt(r)); }, cv);
        }
        break;
      case ValueType::kDouble: {
        const double cv = c.numeric();
        CmpLoop(op, cs, b, out, [&cs](RowId r) { return cs.GetDouble(r); }, cv);
        break;
      }
      case ValueType::kString: {
        const std::string& cv = c.as_string();
        CmpLoop(op, cs, b, out,
                [&cs](RowId r) -> const std::string& { return cs.GetString(r); }, cv);
        break;
      }
      case ValueType::kNull:
        throw StorageError("column of type NULL");
    }
  }
};

/// columnA OP columnB on the same table slot, same type class.
struct CmpColColNode final : VecNode {
  uint32_t lhs, rhs;
  BinaryOp op;
  CmpColColNode(uint32_t l, uint32_t r, BinaryOp o) : lhs(l), rhs(r), op(o) {}

  template <typename GetL, typename GetR>
  void Loop(const Batch& b, uint8_t* out, const ColumnStore& lc, const ColumnStore& rc,
            GetL gl, GetR gr) const {
    auto run = [&](auto cmp) {
      for (size_t i = 0; i < b.n; ++i) {
        const RowId r = b.rows[i];
        out[i] = (lc.IsNull(r) || rc.IsNull(r)) ? kTriU : (cmp(gl(r), gr(r)) ? kTriT : kTriF);
      }
    };
    switch (op) {
      case BinaryOp::kEq: run([](auto a, auto c) { return a == c; }); break;
      case BinaryOp::kNe: run([](auto a, auto c) { return a != c; }); break;
      case BinaryOp::kLt: run([](auto a, auto c) { return a < c; }); break;
      case BinaryOp::kLe: run([](auto a, auto c) { return a <= c; }); break;
      case BinaryOp::kGt: run([](auto a, auto c) { return a > c; }); break;
      case BinaryOp::kGe: run([](auto a, auto c) { return a >= c; }); break;
      default: throw BindError("not a comparison operator");
    }
  }

  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& lc = b.table->column_store(lhs);
    const ColumnStore& rc = b.table->column_store(rhs);
    const bool l_num = lc.type() != ValueType::kString;
    const bool r_num = rc.type() != ValueType::kString;
    if (l_num && r_num) {
      if (lc.type() == ValueType::kInt && rc.type() == ValueType::kInt) {
        Loop(b, out, lc, rc, [&lc](RowId r) { return lc.GetInt(r); },
             [&rc](RowId r) { return rc.GetInt(r); });
      } else {
        auto num = [](const ColumnStore& c) {
          return [&c](RowId r) {
            return c.type() == ValueType::kInt ? static_cast<double>(c.GetInt(r)) : c.GetDouble(r);
          };
        };
        Loop(b, out, lc, rc, num(lc), num(rc));
      }
    } else if (!l_num && !r_num) {
      Loop(b, out, lc, rc, [&lc](RowId r) -> const std::string& { return lc.GetString(r); },
           [&rc](RowId r) -> const std::string& { return rc.GetString(r); });
    } else {
      // Cross-class: the type-rank comparison is the same for every pair of
      // non-null cells (numeric ranks below string).
      const auto rank_cmp = l_num ? std::strong_ordering::less : std::strong_ordering::greater;
      bool fixed;
      switch (op) {
        case BinaryOp::kEq: fixed = false; break;
        case BinaryOp::kNe: fixed = true; break;
        case BinaryOp::kLt: fixed = rank_cmp == std::strong_ordering::less; break;
        case BinaryOp::kLe: fixed = rank_cmp != std::strong_ordering::greater; break;
        case BinaryOp::kGt: fixed = rank_cmp == std::strong_ordering::greater; break;
        case BinaryOp::kGe: fixed = rank_cmp != std::strong_ordering::less; break;
        default: throw BindError("not a comparison operator");
      }
      const uint8_t tri = fixed ? kTriT : kTriF;
      for (size_t i = 0; i < b.n; ++i) {
        const RowId r = b.rows[i];
        out[i] = (lc.IsNull(r) || rc.IsNull(r)) ? kTriU : tri;
      }
    }
  }
};

/// col BETWEEN lo AND hi for an int column with int bounds — the common
/// BENCH shape gets a single-pass kernel. General BETWEEN compiles to
/// AND(col >= lo, col <= hi) (plus NOT when negated), which is equivalent
/// under Kleene semantics because the bounds are non-null constants.
struct BetweenIntNode final : VecNode {
  uint32_t col;
  int64_t lo, hi;
  bool negated;
  BetweenIntNode(uint32_t c, int64_t l, int64_t h, bool n) : col(c), lo(l), hi(h), negated(n) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    const uint8_t in_tri = negated ? kTriF : kTriT;
    const uint8_t out_tri = negated ? kTriT : kTriF;
    for (size_t i = 0; i < b.n; ++i) {
      const RowId r = b.rows[i];
      if (cs.IsNull(r)) {
        out[i] = kTriU;
      } else {
        const int64_t v = cs.GetInt(r);
        out[i] = (v >= lo && v <= hi) ? in_tri : out_tri;
      }
    }
  }
};

/// col [NOT] IN (consts...). Members are pre-partitioned by type class at
/// compile time; a NULL member makes non-matches Unknown (SQL's IN/NOT IN
/// NULL semantics).
struct InNode final : VecNode {
  uint32_t col;
  bool negated = false;
  bool has_null_member = false;
  std::vector<int64_t> int_members;         // sorted
  std::vector<double> double_members;       // sorted
  std::vector<std::string> string_members;  // sorted

  uint8_t Hit() const { return negated ? kTriF : kTriT; }
  uint8_t MissTri() const {
    if (has_null_member) return kTriU;
    return negated ? kTriT : kTriF;
  }

  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    const uint8_t hit = Hit(), miss = MissTri();
    switch (cs.type()) {
      case ValueType::kInt: {
        // IN lists are almost always tiny and all-int; a branch-free linear
        // sweep over a small member array beats binary_search's call +
        // log-n branches, so that common case gets its own fully-inlined
        // loop (the batch-level dispatch keeps the per-row path clean).
        const int64_t* mb = int_members.data();
        const size_t mn = int_members.size();
        if (double_members.empty() && mn <= 16) {
          ForBatchNonNull(cs, b, out, [&](RowId r) {
            const int64_t v = cs.GetInt(r);
            bool found = false;
            for (size_t k = 0; k < mn; ++k) found |= (mb[k] == v);
            return found ? hit : miss;
          });
          break;
        }
        ForBatchNonNull(cs, b, out, [&](RowId r) {
          const int64_t v = cs.GetInt(r);
          if (std::binary_search(int_members.begin(), int_members.end(), v)) return hit;
          if (!double_members.empty() &&
              std::binary_search(double_members.begin(), double_members.end(),
                                 static_cast<double>(v))) {
            return hit;
          }
          return miss;
        });
        break;
      }
      case ValueType::kDouble:
        ForBatchNonNull(cs, b, out, [&](RowId r) {
          const double v = cs.GetDouble(r);
          if (std::binary_search(double_members.begin(), double_members.end(), v)) return hit;
          for (int64_t m : int_members) {
            if (static_cast<double>(m) == v) return hit;
          }
          return miss;
        });
        break;
      case ValueType::kString:
        ForBatchNonNull(cs, b, out, [&](RowId r) {
          return std::binary_search(string_members.begin(), string_members.end(),
                                    cs.GetString(r))
                     ? hit
                     : miss;
        });
        break;
      case ValueType::kNull:
        throw StorageError("column of type NULL");
    }
  }
};

/// string_col [NOT] LIKE 'pattern'.
struct LikeNode final : VecNode {
  uint32_t col;
  std::string pattern;
  bool negated;
  LikeNode(uint32_t c, std::string p, bool n) : col(c), pattern(std::move(p)), negated(n) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    ForBatchNonNull(cs, b, out, [&](RowId r) {
      const bool m = LikeMatch(cs.GetString(r), pattern);
      return (m != negated) ? kTriT : kTriF;
    });
  }
};

/// col IS [NOT] NULL — reads only the null bitmap, never Unknown.
struct IsNullNode final : VecNode {
  uint32_t col;
  bool negated;
  IsNullNode(uint32_t c, bool n) : col(c), negated(n) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    for (size_t i = 0; i < b.n; ++i) {
      const bool is_null = cs.IsNull(b.rows[i]);
      out[i] = (is_null != negated) ? kTriT : kTriF;
    }
  }
};

struct NotNode final : VecNode {
  VecNodePtr child;
  explicit NotNode(VecNodePtr c) : child(std::move(c)) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    child->Eval(b, out);
    for (size_t i = 0; i < b.n; ++i) out[i] = TriNot(out[i]);
  }
};

struct AndNode final : VecNode {
  VecNodePtr lhs, rhs;
  AndNode(VecNodePtr l, VecNodePtr r) : lhs(std::move(l)), rhs(std::move(r)) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    uint8_t tmp[kVectorBatchRows];
    lhs->Eval(b, out);
    rhs->Eval(b, tmp);
    for (size_t i = 0; i < b.n; ++i) out[i] = TriAnd(out[i], tmp[i]);
  }
};

struct OrNode final : VecNode {
  VecNodePtr lhs, rhs;
  OrNode(VecNodePtr l, VecNodePtr r) : lhs(std::move(l)), rhs(std::move(r)) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    uint8_t tmp[kVectorBatchRows];
    lhs->Eval(b, out);
    rhs->Eval(b, tmp);
    for (size_t i = 0; i < b.n; ++i) out[i] = TriOr(out[i], tmp[i]);
  }
};

// ---------------------------------------------------------------------------
// Predicate compilation
// ---------------------------------------------------------------------------

bool SameTypeClass(ValueType col, const Value& c) {
  if (col == ValueType::kString) return c.is_string();
  return c.is_numeric();
}

/// Compile `e` into a kernel tree over columns of table slot 0, or nullptr
/// when the shape is not covered (the whole query then falls back to the
/// row engine, which either handles it or raises the same error).
VecNodePtr CompileNode(const Expr& e, const Table& table, const std::vector<Value>& params) {
  auto column_of = [](const Expr& c) -> std::optional<uint32_t> {
    if (c.kind == Expr::Kind::kColumn && c.table_slot == 0 && c.column_index >= 0) {
      return static_cast<uint32_t>(c.column_index);
    }
    return std::nullopt;
  };
  auto const_of = [&](const Expr& c) { return ConstValue(c, params); };

  switch (e.kind) {
    case Expr::Kind::kUnaryNot: {
      auto child = CompileNode(*e.children[0], table, params);
      if (!child) return nullptr;
      return std::make_unique<NotNode>(std::move(child));
    }
    case Expr::Kind::kBinary: {
      if (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr) {
        auto l = CompileNode(*e.children[0], table, params);
        if (!l) return nullptr;
        auto r = CompileNode(*e.children[1], table, params);
        if (!r) return nullptr;
        if (e.op == BinaryOp::kAnd) return std::make_unique<AndNode>(std::move(l), std::move(r));
        return std::make_unique<OrNode>(std::move(l), std::move(r));
      }
      if (!IsComparison(e.op)) return nullptr;
      auto lcol = column_of(*e.children[0]);
      auto rcol = column_of(*e.children[1]);
      if (lcol && rcol) return std::make_unique<CmpColColNode>(*lcol, *rcol, e.op);
      auto lconst = lcol ? std::nullopt : const_of(*e.children[0]);
      auto rconst = rcol ? std::nullopt : const_of(*e.children[1]);
      if (lconst && rconst) {
        // Column-less conjunct: fold to a fixed truth value.
        if (lconst->is_null() || rconst->is_null()) return std::make_unique<TriConstNode>(kTriU);
        const auto cmp = lconst->compare(*rconst);
        bool v;
        switch (e.op) {
          case BinaryOp::kEq: v = cmp == std::strong_ordering::equal; break;
          case BinaryOp::kNe: v = cmp != std::strong_ordering::equal; break;
          case BinaryOp::kLt: v = cmp == std::strong_ordering::less; break;
          case BinaryOp::kLe: v = cmp != std::strong_ordering::greater; break;
          case BinaryOp::kGt: v = cmp == std::strong_ordering::greater; break;
          default: v = cmp != std::strong_ordering::less; break;
        }
        return std::make_unique<TriConstNode>(v ? kTriT : kTriF);
      }
      uint32_t col;
      Value c;
      BinaryOp op = e.op;
      if (lcol && rconst) {
        col = *lcol;
        c = *rconst;
      } else if (rcol && lconst) {
        col = *rcol;
        c = *lconst;
        switch (op) {  // flip operand order
          case BinaryOp::kLt: op = BinaryOp::kGt; break;
          case BinaryOp::kLe: op = BinaryOp::kGe; break;
          case BinaryOp::kGt: op = BinaryOp::kLt; break;
          case BinaryOp::kGe: op = BinaryOp::kLe; break;
          default: break;
        }
      } else {
        return nullptr;  // side is neither a slot-0 column nor a constant
      }
      if (c.is_null()) return std::make_unique<TriConstNode>(kTriU);
      const ValueType col_type = table.column_store(col).type();
      if (!SameTypeClass(col_type, c)) {
        // Cross-class comparison: Value's total order ranks numerics below
        // strings, the same for every non-null cell.
        const bool col_less = col_type != ValueType::kString;
        bool v;
        switch (op) {
          case BinaryOp::kEq: v = false; break;
          case BinaryOp::kNe: v = true; break;
          case BinaryOp::kLt: v = col_less; break;
          case BinaryOp::kLe: v = col_less; break;
          case BinaryOp::kGt: v = !col_less; break;
          default: v = !col_less; break;
        }
        return std::make_unique<FixedRankCmpNode>(col, v ? kTriT : kTriF);
      }
      return std::make_unique<CmpConstNode>(col, op, std::move(c));
    }
    case Expr::Kind::kBetween: {
      auto col = column_of(*e.children[0]);
      if (!col) return nullptr;
      auto lo = const_of(*e.children[1]);
      auto hi = const_of(*e.children[2]);
      if (!lo || !hi) return nullptr;
      if (lo->is_null() || hi->is_null()) return std::make_unique<TriConstNode>(kTriU);
      const ValueType col_type = table.column_store(*col).type();
      if (col_type == ValueType::kInt && lo->is_int() && hi->is_int()) {
        return std::make_unique<BetweenIntNode>(*col, lo->as_int(), hi->as_int(), e.negated);
      }
      // General form: AND of the two bound comparisons, NOT when negated —
      // equivalent under Kleene logic because both bounds are non-null.
      auto ge = [&]() -> VecNodePtr {
        if (!SameTypeClass(col_type, *lo)) {
          const bool col_less = col_type != ValueType::kString;  // col >= lo
          return std::make_unique<FixedRankCmpNode>(*col, !col_less ? kTriT : kTriF);
        }
        return std::make_unique<CmpConstNode>(*col, BinaryOp::kGe, *lo);
      }();
      auto le = [&]() -> VecNodePtr {
        if (!SameTypeClass(col_type, *hi)) {
          const bool col_less = col_type != ValueType::kString;  // col <= hi
          return std::make_unique<FixedRankCmpNode>(*col, col_less ? kTriT : kTriF);
        }
        return std::make_unique<CmpConstNode>(*col, BinaryOp::kLe, *hi);
      }();
      VecNodePtr both = std::make_unique<AndNode>(std::move(ge), std::move(le));
      if (e.negated) return std::make_unique<NotNode>(std::move(both));
      return both;
    }
    case Expr::Kind::kIn: {
      auto col = column_of(*e.children[0]);
      if (!col) return nullptr;
      auto node = std::make_unique<InNode>();
      node->col = *col;
      node->negated = e.negated;
      for (size_t i = 1; i < e.children.size(); ++i) {
        auto item = const_of(*e.children[i]);
        if (!item) return nullptr;
        if (item->is_null()) {
          node->has_null_member = true;
        } else if (item->is_int()) {
          node->int_members.push_back(item->as_int());
        } else if (item->is_double()) {
          node->double_members.push_back(item->as_double());
        } else {
          node->string_members.push_back(item->as_string());
        }
      }
      std::sort(node->int_members.begin(), node->int_members.end());
      std::sort(node->double_members.begin(), node->double_members.end());
      std::sort(node->string_members.begin(), node->string_members.end());
      return node;
    }
    case Expr::Kind::kLike: {
      auto col = column_of(*e.children[0]);
      auto pattern = const_of(*e.children[1]);
      if (!col || !pattern) return nullptr;
      if (pattern->is_null()) return std::make_unique<TriConstNode>(kTriU);
      // Non-string operands make the row engine throw BindError; fall back
      // so the behavior (and message) stays identical.
      if (!pattern->is_string()) return nullptr;
      if (table.column_store(*col).type() != ValueType::kString) return nullptr;
      return std::make_unique<LikeNode>(*col, pattern->as_string(), e.negated);
    }
    case Expr::Kind::kIsNull: {
      auto col = column_of(*e.children[0]);
      if (!col) return nullptr;
      return std::make_unique<IsNullNode>(*col, e.negated);
    }
    default:
      return nullptr;
  }
}

// ---------------------------------------------------------------------------
// Scan worker pool
// ---------------------------------------------------------------------------

/// A lazily-spawned pool shared by all scans in the process. Workers never
/// take table locks: they read under the calling thread's ReadLock, which
/// stays held until Run returns (see docs/EXECUTION.md and CONCURRENCY.md).
class ScanPool {
 public:
  static ScanPool& Instance() {
    static ScanPool pool;
    return pool;
  }

  /// Run fn(0..task_count-1) across the pool plus the calling thread;
  /// blocks until every task finished. At most `max_threads` threads
  /// (including the caller) participate. Rethrows the first task error.
  void Run(size_t task_count, size_t max_threads, const std::function<void(size_t)>& fn) {
    Job job;
    job.fn = &fn;
    job.count = task_count;
    job.max_participants = max_threads;
    {
      std::lock_guard<std::mutex> lk(m_);
      EnsureWorkersLocked();
      ++seq_;
      job_ = &job;
      job.participants = 1;  // the caller
    }
    cv_.notify_all();
    WorkOn(job);
    std::unique_lock<std::mutex> lk(m_);
    --job.participants;
    done_cv_.wait(lk, [&] { return job.participants == 0; });
    job_ = nullptr;
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    size_t max_participants = 1;
    std::atomic<size_t> next{0};
    size_t participants = 0;     // guarded by m_
    std::exception_ptr error;    // guarded by m_
  };

  ~ScanPool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void EnsureWorkersLocked() {
    if (!workers_.empty()) return;
    const size_t n = kMaxScanThreads - 1;  // participation is capped per job
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkOn(Job& job) {
    for (;;) {
      const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.count) return;
      try {
        (*job.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(m_);
        if (!job.error) job.error = std::current_exception();
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      cv_.wait(lk, [&] { return stop_ || seq_ != seen; });
      if (stop_) return;
      seen = seq_;
      Job* job = job_;
      if (!job || job->participants >= job->max_participants) continue;
      ++job->participants;
      lk.unlock();
      WorkOn(*job);
      lk.lock();
      if (--job->participants == 0) done_cv_.notify_all();
    }
  }

  std::mutex m_;
  std::condition_variable cv_;       // workers: new job or stop
  std::condition_variable done_cv_;  // caller: all participants exited
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;   // guarded by m_
  uint64_t seq_ = 0;     // guarded by m_
  bool stop_ = false;    // guarded by m_
};

// ---------------------------------------------------------------------------
// Filter driver: adaptive conjunct ordering + compaction
// ---------------------------------------------------------------------------

/// Per-scan (per-worker) runtime state of the compiled conjuncts. The
/// compiled nodes are shared and immutable; selectivity stats and ordering
/// are thread-local so parallel chunks adapt independently without sharing
/// mutable state.
struct FilterState {
  struct Conjunct {
    const VecNode* node;
    uint64_t rows_in = 0;
    uint64_t rows_out = 0;
  };
  std::vector<Conjunct> conjuncts;
  std::vector<size_t> order;  // evaluation order, re-sorted by pass rate
  uint64_t batches = 0;
  uint64_t rows_scanned = 0;
  uint64_t reorders = 0;

  explicit FilterState(const std::vector<VecNodePtr>& nodes) {
    conjuncts.reserve(nodes.size());
    for (const auto& n : nodes) conjuncts.push_back({n.get(), 0, 0});
    order.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) order[i] = i;
  }

  /// Keep only definitely-true rows of sel[0..n); returns the new count.
  size_t FilterBatch(const Table& table, RowId* sel, size_t n) {
    ++batches;
    rows_scanned += n;
    uint8_t states[kVectorBatchRows];
    for (size_t oi = 0; oi < order.size() && n > 0; ++oi) {
      Conjunct& c = conjuncts[order[oi]];
      c.node->Eval(Batch{&table, sel, n}, states);
      size_t m = 0;
      for (size_t i = 0; i < n; ++i) {
        if (states[i] == kTriT) sel[m++] = sel[i];
      }
      c.rows_in += n;
      c.rows_out += m;
      n = m;  // short-circuit: later conjuncts see only survivors
    }
    Reorder();
    return n;
  }

 private:
  /// Re-sort the evaluation order by observed pass rate (most selective
  /// first). Unobserved conjuncts keep rate 0 so the initial WHERE order
  /// is preserved until real data arrives (stable sort).
  void Reorder() {
    if (order.size() < 2) return;
    auto rate = [&](size_t i) {
      const Conjunct& c = conjuncts[i];
      return c.rows_in == 0 ? 0.0
                            : static_cast<double>(c.rows_out) / static_cast<double>(c.rows_in);
    };
    const std::vector<size_t> before = order;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return rate(a) < rate(b); });
    if (order != before) ++reorders;
  }
};

// ---------------------------------------------------------------------------
// Sinks: where filtered batches go
// ---------------------------------------------------------------------------

/// Aggregate one select item over a filtered batch using typed column
/// reads — no Value boxing on the scan path.
void AddAggBatch(exec::Accumulator& acc, const Table& table, int32_t column, const RowId* sel,
                 size_t n) {
  if (acc.func == AggFunc::kCountStar) {
    acc.count += static_cast<int64_t>(n);
    return;
  }
  const ColumnStore& col = table.column_store(static_cast<uint32_t>(column));
  switch (acc.func) {
    case AggFunc::kCount:
      for (size_t i = 0; i < n; ++i) {
        if (!col.IsNull(sel[i])) ++acc.count;
      }
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (col.type() == ValueType::kInt) {
        for (size_t i = 0; i < n; ++i) {
          const RowId r = sel[i];
          if (col.IsNull(r)) continue;
          ++acc.count;
          acc.AddIntToSum(col.GetInt(r));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          const RowId r = sel[i];
          if (col.IsNull(r)) continue;
          ++acc.count;
          acc.sum_is_int = false;
          acc.double_sum += col.GetDouble(r);
        }
      }
      break;
    case AggFunc::kMin:
    case AggFunc::kMax: {
      const bool want_min = acc.func == AggFunc::kMin;
      // Typed batch-local best, folded into the boxed running best once.
      bool seen = false;
      size_t best = 0;
      auto better = [&](auto a, auto b) { return want_min ? a < b : a > b; };
      if (col.type() == ValueType::kInt) {
        int64_t bv = 0;
        for (size_t i = 0; i < n; ++i) {
          const RowId r = sel[i];
          if (col.IsNull(r)) continue;
          ++acc.count;
          const int64_t v = col.GetInt(r);
          if (!seen || better(v, bv)) { seen = true; bv = v; best = i; }
        }
      } else if (col.type() == ValueType::kDouble) {
        double bv = 0;
        for (size_t i = 0; i < n; ++i) {
          const RowId r = sel[i];
          if (col.IsNull(r)) continue;
          ++acc.count;
          const double v = col.GetDouble(r);
          if (!seen || better(v, bv)) { seen = true; bv = v; best = i; }
        }
      } else {
        const std::string* bv = nullptr;
        for (size_t i = 0; i < n; ++i) {
          const RowId r = sel[i];
          if (col.IsNull(r)) continue;
          ++acc.count;
          const std::string& v = col.GetString(r);
          if (!bv || better(v, *bv)) { bv = &v; seen = true; best = i; }
        }
      }
      if (seen) {
        const Value v = col.Get(sel[best]);
        Value& slot = want_min ? acc.min : acc.max;
        if (slot.is_null() || (want_min ? v < slot : v > slot)) slot = v;
      }
      break;
    }
    default:
      break;
  }
}

/// Per-chunk output: exactly one of `rows` (projection) or the aggregate
/// state is populated; chunks are merged in chunk order so the final
/// result matches the serial scan's row/group order.
struct ChunkOutput {
  std::vector<Row> rows;
  std::vector<exec::Accumulator> accs;
  int64_t agg_rows_consumed = 0;
  exec::GroupState groups;
  uint64_t batches = 0;
  uint64_t rows_scanned = 0;
  uint64_t reorders = 0;
};

/// What a compiled query projects/aggregates, derived once per execution.
struct CompiledQuery {
  const BoundQuery* query = nullptr;
  const Table* table = nullptr;
  const SelectStmt* stmt = nullptr;
  std::vector<VecNodePtr> conjunct_nodes;
  std::vector<const Expr*> conjunct_exprs;  // parallel, feeds the planner
  bool grouped = false;
  bool has_aggregates = false;
  std::vector<uint32_t> group_cols;      // GROUP BY column indexes
  std::vector<int32_t> agg_cols;         // per aggregate item; -1 = COUNT(*)
};

void ConsumeProjection(const CompiledQuery& cq, const RowId* sel, size_t n,
                       std::vector<Row>& out) {
  const Table& table = *cq.table;
  for (size_t i = 0; i < n; ++i) {
    const RowId r = sel[i];
    Row row;
    for (const SelectItem& item : cq.stmt->items) {
      if (item.kind == SelectItem::Kind::kStar) {
        for (size_t c = 0; c < table.schema().size(); ++c) {
          row.push_back(table.column_store(static_cast<uint32_t>(c)).Get(r));
        }
      } else {
        row.push_back(table.column_store(static_cast<uint32_t>(item.expr->column_index)).Get(r));
      }
    }
    out.push_back(std::move(row));
  }
}

void ConsumeAggregate(const CompiledQuery& cq, const RowId* sel, size_t n, ChunkOutput& out) {
  if (!cq.grouped) {
    for (size_t a = 0; a < out.accs.size(); ++a) {
      AddAggBatch(out.accs[a], *cq.table, cq.agg_cols[a], sel, n);
    }
    out.agg_rows_consumed += static_cast<int64_t>(n);
    return;
  }
  // Grouped: the hash probe runs per selected row (post-filter
  // cardinality) but the key stays in a stack buffer — TouchView only
  // boxes it on a group's first encounter, so the steady state does no
  // per-row allocation. See docs/EXECUTION.md "what stays row-at-a-time".
  const Table& table = *cq.table;
  constexpr size_t kMaxInlineKey = 8;
  const size_t gcols = cq.group_cols.size();
  Value keybuf[kMaxInlineKey];
  const ColumnStore* gstore[kMaxInlineKey] = {};
  if (gcols <= kMaxInlineKey) {
    for (size_t c = 0; c < gcols; ++c) gstore[c] = &table.column_store(cq.group_cols[c]);
  }
  for (size_t i = 0; i < n; ++i) {
    const RowId r = sel[i];
    std::vector<exec::Accumulator>* accs;
    if (gcols <= kMaxInlineKey) {
      for (size_t c = 0; c < gcols; ++c) keybuf[c] = gstore[c]->Get(r);
      accs = &out.groups.TouchView(keybuf, gcols, *cq.stmt);
    } else {
      Row key;
      key.reserve(gcols);
      for (uint32_t c : cq.group_cols) key.push_back(table.column_store(c).Get(r));
      accs = &out.groups.Touch(std::move(key), *cq.stmt);
    }
    for (size_t a = 0; a < accs->size(); ++a) {
      const RowId one = r;
      AddAggBatch((*accs)[a], table, cq.agg_cols[a], &one, 1);
    }
  }
}

/// Scan one row-id range (full scan) through the filter into a chunk output.
void ScanRange(const CompiledQuery& cq, RowId lo, RowId hi, ChunkOutput& out) {
  const Table& table = *cq.table;
  FilterState fs(cq.conjunct_nodes);
  RowId sel[kVectorBatchRows];
  size_t n = 0;
  auto flush = [&] {
    if (n == 0) return;
    const size_t kept = fs.FilterBatch(table, sel, n);
    if (kept > 0) {
      if (cq.has_aggregates || cq.grouped) {
        ConsumeAggregate(cq, sel, kept, out);
      } else {
        ConsumeProjection(cq, sel, kept, out.rows);
      }
    }
    n = 0;
  };
  for (RowId r = lo; r < hi; ++r) {
    if (!table.IsLive(r)) continue;
    sel[n++] = r;
    if (n == kVectorBatchRows) flush();
  }
  flush();
  out.batches += fs.batches;
  out.rows_scanned += fs.rows_scanned;
  out.reorders += fs.reorders;
}

/// Scan an explicit candidate list (index sargs) serially.
void ScanCandidates(const CompiledQuery& cq, const std::vector<RowId>& candidates,
                    ChunkOutput& out) {
  const Table& table = *cq.table;
  FilterState fs(cq.conjunct_nodes);
  RowId sel[kVectorBatchRows];
  size_t offset = 0;
  while (offset < candidates.size()) {
    const size_t n = std::min(kVectorBatchRows, candidates.size() - offset);
    std::copy(candidates.begin() + offset, candidates.begin() + offset + n, sel);
    const size_t kept = fs.FilterBatch(table, sel, n);
    if (kept > 0) {
      if (cq.has_aggregates || cq.grouped) {
        ConsumeAggregate(cq, sel, kept, out);
      } else {
        ConsumeProjection(cq, sel, kept, out.rows);
      }
    }
    offset += n;
  }
  out.batches += fs.batches;
  out.rows_scanned += fs.rows_scanned;
  out.reorders += fs.reorders;
}

// ---------------------------------------------------------------------------
// Query compilation and the top-level run
// ---------------------------------------------------------------------------

/// Compile the query, or nullopt when its shape is not covered.
std::optional<CompiledQuery> Compile(const BoundQuery& query, const std::vector<Value>& params) {
  if (query.tables().size() != 1) return std::nullopt;  // joins stay row-at-a-time
  CompiledQuery cq;
  cq.query = &query;
  cq.table = &query.table(0);
  cq.stmt = &query.stmt();
  const SelectStmt& stmt = *cq.stmt;

  cq.grouped = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (item.kind == SelectItem::Kind::kAggregate) cq.has_aggregates = true;
  }

  if (stmt.where) {
    std::vector<const Expr*> conjuncts;
    exec::SplitConjuncts(*stmt.where, conjuncts);
    for (const Expr* conjunct : conjuncts) {
      auto node = CompileNode(*conjunct, *cq.table, params);
      if (!node) return std::nullopt;
      cq.conjunct_nodes.push_back(std::move(node));
      cq.conjunct_exprs.push_back(conjunct);
    }
  }

  for (const ExprPtr& g : stmt.group_by) {
    if (g->kind != Expr::Kind::kColumn || g->column_index < 0) return std::nullopt;
    cq.group_cols.push_back(static_cast<uint32_t>(g->column_index));
  }
  for (const SelectItem& item : stmt.items) {
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        if (cq.has_aggregates || cq.grouped) return std::nullopt;  // binder rejects anyway
        break;
      case SelectItem::Kind::kColumn:
        if (!item.expr || item.expr->kind != Expr::Kind::kColumn || item.expr->column_index < 0) {
          return std::nullopt;
        }
        break;
      case SelectItem::Kind::kAggregate:
        if (item.func == AggFunc::kCountStar) {
          cq.agg_cols.push_back(-1);
          break;
        }
        if (!item.expr || item.expr->kind != Expr::Kind::kColumn || item.expr->column_index < 0) {
          return std::nullopt;
        }
        // SUM/AVG over a string column makes the row engine throw on the
        // first non-null cell; keep that behavior by not covering it.
        if ((item.func == AggFunc::kSum || item.func == AggFunc::kAvg) &&
            cq.table->column_store(static_cast<uint32_t>(item.expr->column_index)).type() ==
                ValueType::kString) {
          return std::nullopt;
        }
        cq.agg_cols.push_back(item.expr->column_index);
        break;
    }
  }
  return cq;
}

void MergeChunk(const CompiledQuery& cq, ChunkOutput& total, ChunkOutput& chunk,
                ResultSet& result) {
  if (cq.has_aggregates || cq.grouped) {
    if (!cq.grouped) {
      for (size_t i = 0; i < total.accs.size(); ++i) total.accs[i].Merge(chunk.accs[i]);
      total.agg_rows_consumed += chunk.agg_rows_consumed;
    } else {
      total.groups.Merge(chunk.groups);
    }
  } else {
    for (Row& row : chunk.rows) result.AddRow(std::move(row));
  }
  total.batches += chunk.batches;
  total.rows_scanned += chunk.rows_scanned;
  total.reorders += chunk.reorders;
}

ResultSet RunCompiled(const CompiledQuery& cq, const std::vector<Value>& params) {
  const Table& table = *cq.table;
  ResultSet result(exec::OutputColumnNames(*cq.query));

  // The same planner the row engine runs — identical candidates, identical
  // scan order, so un-ORDERed outputs match row for row.
  auto candidates = IndexedCandidates(table, 0, cq.conjunct_exprs, params);

  ChunkOutput total;
  if (!cq.grouped && cq.has_aggregates) {
    total.accs = exec::MakeAccumulators(*cq.stmt);
  }

  bool parallel = false;
  if (candidates) {
    ChunkOutput chunk;
    if (!cq.grouped && cq.has_aggregates) chunk.accs = exec::MakeAccumulators(*cq.stmt);
    ScanCandidates(cq, *candidates, chunk);
    MergeChunk(cq, total, chunk, result);
  } else {
    const RowId slots = table.SlotCount();
    const size_t threads = EffectiveScanThreads();
    const size_t threshold = g_parallel_threshold.load(std::memory_order_relaxed);
    if (slots >= threshold && threads > 1) {
      parallel = true;
      // Several chunks per worker so uneven selectivity balances out; chunk
      // results merge in chunk order, reproducing the serial scan order.
      const size_t max_chunks = threads * 4;
      const size_t min_chunk_rows = std::max<size_t>(kVectorBatchRows * 4, slots / max_chunks);
      const size_t chunks = std::max<size_t>(1, std::min<size_t>(max_chunks, slots / min_chunk_rows));
      const RowId chunk_rows = (slots + chunks - 1) / chunks;
      std::vector<ChunkOutput> outputs(chunks);
      for (auto& out : outputs) {
        if (!cq.grouped && cq.has_aggregates) out.accs = exec::MakeAccumulators(*cq.stmt);
      }
      ScanPool::Instance().Run(chunks, threads, [&](size_t i) {
        const RowId lo = static_cast<RowId>(i) * chunk_rows;
        const RowId hi = std::min<RowId>(lo + chunk_rows, slots);
        if (lo < hi) ScanRange(cq, lo, hi, outputs[i]);
      });
      for (auto& out : outputs) MergeChunk(cq, total, out, result);
    } else {
      ChunkOutput chunk;
      if (!cq.grouped && cq.has_aggregates) chunk.accs = exec::MakeAccumulators(*cq.stmt);
      ScanRange(cq, 0, slots, chunk);
      MergeChunk(cq, total, chunk, result);
    }
  }

  if (cq.has_aggregates || cq.grouped) {
    exec::GroupState state;
    if (cq.grouped) {
      state = std::move(total.groups);
    } else if (total.agg_rows_consumed > 0) {
      // The single implicit group exists iff at least one row passed the
      // WHERE clause (matching the row engine's Consume).
      state.Touch(Row{}, *cq.stmt) = std::move(total.accs);
    }
    exec::EmitGroupRows(*cq.stmt, state, cq.grouped, result);
  }
  exec::ApplyOrderAndLimit(*cq.query, result);

  g_stats.batches.fetch_add(total.batches, std::memory_order_relaxed);
  g_stats.rows_scanned.fetch_add(total.rows_scanned, std::memory_order_relaxed);
  g_stats.conjunct_reorders.fetch_add(total.reorders, std::memory_order_relaxed);
  if (parallel) g_stats.parallel_scans.fetch_add(1, std::memory_order_relaxed);
  return result;
}

}  // namespace

VectorizedStats GetVectorizedStats() {
  VectorizedStats s;
  s.queries_vectorized = g_stats.queries_vectorized.load(std::memory_order_relaxed);
  s.queries_fallback = g_stats.queries_fallback.load(std::memory_order_relaxed);
  s.batches = g_stats.batches.load(std::memory_order_relaxed);
  s.rows_scanned = g_stats.rows_scanned.load(std::memory_order_relaxed);
  s.parallel_scans = g_stats.parallel_scans.load(std::memory_order_relaxed);
  s.conjunct_reorders = g_stats.conjunct_reorders.load(std::memory_order_relaxed);
  return s;
}

std::optional<ResultSet> TryExecuteVectorized(const BoundQuery& query,
                                              const std::vector<Value>& params) {
  if (!g_enabled.load(std::memory_order_relaxed)) return std::nullopt;
  if (params.size() < query.stmt().param_count) {
    throw BindError("statement needs " + std::to_string(query.stmt().param_count) +
                    " parameters, got " + std::to_string(params.size()));
  }
  auto compiled = Compile(query, params);
  if (!compiled) {
    g_stats.queries_fallback.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  g_stats.queries_vectorized.fetch_add(1, std::memory_order_relaxed);
  return RunCompiled(*compiled, params);
}

bool SetVectorizedEnabled(bool enabled) { return g_enabled.exchange(enabled); }
size_t SetParallelScanThreshold(size_t rows) { return g_parallel_threshold.exchange(rows); }
size_t SetScanThreads(size_t threads) { return g_scan_threads.exchange(threads); }

}  // namespace qc::sql
