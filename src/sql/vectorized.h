// Vectorized columnar execution for the cache-miss path.
//
// Instead of walking the table row by row and boxing every cell into a
// common::Value (evaluator.cc's tree-walker), this engine scans in
// fixed-size selection-vector batches over storage::ColumnStore's typed
// contiguous arrays: predicates are evaluated column-at-a-time with typed
// kernels (int/double/string × eq/ne/range/BETWEEN/IN/LIKE/IS NULL,
// three-valued NULL semantics preserved), top-level AND conjuncts are
// re-ordered each batch by observed selectivity and short-circuit once the
// selection vector runs dry, index sargs still feed initial candidates
// (sql/planner.h — the same planner the row engine runs, so both engines
// scan in the same order), and large full scans are partitioned across a
// worker pool that reads under the caller's table ReadLock. See
// docs/EXECUTION.md for the model and the kernel table.
//
// Two-table equi-joins execute natively: each side's local conjuncts are
// vectorized with the same kernels, the smaller filtered side feeds a
// typed build table (narrow int key ranges direct-addressed, wider ones
// open-addressed, string keys interned — no per-row Value boxing), and
// matched row pairs stream through residual comparisons into the shared
// aggregate/group/projection sinks in the row engine's exact pair order. GROUP BY over provably
// small all-int key spaces takes a packed direct-array layout instead of
// the hash path, and select lists / predicates may carry + - * /
// arithmetic over numeric columns.
//
// Shapes the engine does not cover (joins without a usable equi conjunct,
// non-column aggregate arguments, predicates it cannot compile) return
// nullopt from TryExecuteVectorized and run on the row-at-a-time engine,
// which also serves as the oracle for the randomized differential suite
// (tests/sql/vectorized_diff_test.cc). Refusals are tallied per reason in
// VectorizedStats.
//
// @thread_safety TryExecuteVectorized is safe to call from any number of
// threads provided each caller holds the table's ReadLock (exactly what
// CachedQueryEngine does); scan workers piggyback on the *caller's* lock
// and never take table locks themselves. The knobs below are process-wide
// and meant for startup/tests, not concurrent flipping.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sql/binder.h"
#include "sql/result.h"

namespace qc::sql {

/// Rows per selection-vector batch.
inline constexpr size_t kVectorBatchRows = 1024;

/// Process-wide engine counters (relaxed atomics; snapshot via
/// GetVectorizedStats). `queries_fallback` counts Execute() calls the
/// vectorized engine refused (shape not covered) — they ran row-at-a-time
/// — and the four `fallback_*` counters split it by refusal reason.
struct VectorizedStats {
  uint64_t queries_vectorized = 0;
  uint64_t queries_fallback = 0;
  uint64_t fallback_join = 0;        // join shapes the hash join can't take
  uint64_t fallback_expression = 0;  // predicates/scalars that didn't compile
  uint64_t fallback_shape = 0;       // select-list / group-by shapes
  uint64_t fallback_type = 0;        // unsupported column type combinations
  uint64_t joins_vectorized = 0;     // subset of queries_vectorized
  uint64_t batches = 0;
  uint64_t rows_scanned = 0;       // rows entering the filter
  uint64_t parallel_scans = 0;     // scans that used the worker pool
  uint64_t conjunct_reorders = 0;  // adaptive selectivity re-orderings
};

VectorizedStats GetVectorizedStats();

/// Execute on the vectorized engine; nullopt when the query's shape is not
/// covered (the caller then runs the row engine). Throws the same errors
/// the row engine would for errors both can detect (unbound parameters,
/// binder-invariant violations).
std::optional<ResultSet> TryExecuteVectorized(const BoundQuery& query,
                                              const std::vector<Value>& params);

/// Knobs (process-wide; each returns the previous value). Defaults:
/// enabled, threshold 65536 rows, threads = min(hardware, 16) overridable
/// with QC_SCAN_THREADS.
bool SetVectorizedEnabled(bool enabled);
size_t SetParallelScanThreshold(size_t rows);
size_t SetScanThreads(size_t threads);

}  // namespace qc::sql
