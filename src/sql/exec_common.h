// Execution machinery shared by the two query engines: the row-at-a-time
// tree-walker in evaluator.cc (the correctness oracle and general fallback)
// and the vectorized batch engine in vectorized.cc (the fast miss path).
// Keeping aggregation, grouping, projection naming, and ORDER BY/LIMIT in
// one place guarantees the engines can only differ in *how* they scan, not
// in what a result looks like — the property the differential suite
// (tests/sql/vectorized_diff_test.cc) pins down.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sql/binder.h"
#include "sql/result.h"

namespace qc::sql::exec {

/// One aggregate's running state. SUM keeps parallel integer and double
/// sums: the integer sum is exact while every input is an int and no
/// addition overflows; on the first double input *or* the first int64
/// overflow it degrades to the double sum (detected with
/// __builtin_add_overflow — the wrap itself would be UB).
struct Accumulator {
  AggFunc func = AggFunc::kNone;
  int64_t count = 0;
  int64_t int_sum = 0;
  double double_sum = 0;
  bool sum_is_int = true;
  Value min, max;

  /// Overflow-checked running sum for the int-typed fast paths; also used
  /// by the boxed Add. Returns through `sum_is_int`.
  void AddIntToSum(int64_t v) {
    if (sum_is_int && __builtin_add_overflow(int_sum, v, &int_sum)) {
      sum_is_int = false;  // int_sum is now garbage; Result uses double_sum
    }
    double_sum += static_cast<double>(v);
  }

  void Add(const Value& v);

  /// Fold another accumulator of the same func into this one (parallel
  /// scan workers merge their per-chunk partials through this).
  void Merge(const Accumulator& other);

  Value Result() const;
};

/// Build the accumulator row for one group: one entry per aggregate select
/// item, in select-list order.
std::vector<Accumulator> MakeAccumulators(const SelectStmt& stmt);

/// Borrowed view of a group key living in a stack buffer — lets the hot
/// grouped-aggregation loop probe the hash map without heap-allocating a
/// Row per input row (heterogeneous lookup; the key is boxed only when the
/// group is new).
struct RowView {
  const Value* data;
  size_t n;
};

struct RowHash {
  using is_transparent = void;
  static size_t Hash(const Value* d, size_t n) {
    size_t h = 0x811c9dc5;
    for (size_t i = 0; i < n; ++i) h = h * 31 + d[i].Hash();
    return h;
  }
  size_t operator()(const storage::Row& row) const { return Hash(row.data(), row.size()); }
  size_t operator()(const RowView& v) const { return Hash(v.data, v.n); }
};

struct RowEq {
  using is_transparent = void;
  static bool Eq(const Value* a, size_t an, const Value* b, size_t bn) {
    if (an != bn) return false;
    for (size_t i = 0; i < an; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
  bool operator()(const storage::Row& x, const storage::Row& y) const {
    return Eq(x.data(), x.size(), y.data(), y.size());
  }
  bool operator()(const RowView& x, const storage::Row& y) const {
    return Eq(x.data, x.n, y.data(), y.size());
  }
  bool operator()(const storage::Row& x, const RowView& y) const {
    return Eq(x.data(), x.size(), y.data, y.n);
  }
};

/// Grouped-aggregation state: accumulators keyed by the GROUP BY key row,
/// plus first-encounter order (the row order the engines emit).
struct GroupState {
  using Map = std::unordered_map<storage::Row, std::vector<Accumulator>, RowHash, RowEq>;
  Map groups;
  std::vector<const Map::value_type*> order;

  /// Find or create the group for `key`; creation appends to `order`.
  std::vector<Accumulator>& Touch(storage::Row key, const SelectStmt& stmt);

  /// Same, but probes with a borrowed key first and boxes it only on first
  /// encounter — the vectorized grouped loop's per-row path.
  std::vector<Accumulator>& TouchView(const Value* key, size_t n, const SelectStmt& stmt);

  /// Merge another state (in its encounter order) into this one. Used by
  /// the parallel scan: merging chunk states in chunk order reproduces the
  /// serial scan's first-encounter order exactly.
  void Merge(const GroupState& other);
};

/// Output column names in select-list order (shared so both engines label
/// results identically).
std::vector<std::string> OutputColumnNames(const BoundQuery& query);

/// Split a WHERE tree into its top-level AND conjuncts.
void SplitConjuncts(const Expr& e, std::vector<const Expr*>& out);

/// Emit the grouped/aggregate output rows into `result`. `grouped` is true
/// when the statement has a GROUP BY (an empty grouped input emits no rows;
/// an empty ungrouped aggregate emits the COUNT=0/SUM=NULL row). Throws
/// BindError if a projected plain column matches no GROUP BY key — the
/// binder rejects that shape, so reaching it here means the invariant broke
/// and silently emitting key cell 0 would be a wrong answer.
void EmitGroupRows(const SelectStmt& stmt, const GroupState& state, bool grouped,
                   ResultSet& result);

/// ORDER BY (resolved output keys) then LIMIT, in place.
void ApplyOrderAndLimit(const BoundQuery& query, ResultSet& result);

}  // namespace qc::sql::exec
