// Recursive-descent parser for the SQL subset (see ast.h for coverage).
#pragma once

#include <string>

#include "sql/ast.h"

namespace qc::sql {

/// Parse one SELECT statement. Throws ParseError on malformed input (or on
/// a DML statement). A trailing semicolon is permitted.
SelectStmt Parse(const std::string& sql);

/// Parse any supported statement: SELECT, INSERT INTO ... VALUES (...),
/// UPDATE ... SET ... [WHERE ...], DELETE FROM ... [WHERE ...].
AnyStatement ParseStatement(const std::string& sql);

}  // namespace qc::sql
