#include "sql/fingerprint.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace qc::sql {

namespace {

void WriteExpr(std::ostream& os, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      os << e.value.ToString();
      return;
    case Expr::Kind::kParam:
      os << "$" << (e.param_index + 1);
      return;
    case Expr::Kind::kColumn:
      if (!e.qualifier.empty()) os << ToUpper(e.qualifier) << ".";
      os << ToUpper(e.column);
      return;
    case Expr::Kind::kUnaryNot:
      os << "(NOT ";
      WriteExpr(os, *e.children[0]);
      os << ")";
      return;
    case Expr::Kind::kBinary:
      os << "(";
      WriteExpr(os, *e.children[0]);
      os << " " << BinaryOpName(e.op) << " ";
      WriteExpr(os, *e.children[1]);
      os << ")";
      return;
    case Expr::Kind::kBetween:
      os << "(";
      WriteExpr(os, *e.children[0]);
      os << (e.negated ? " NOT BETWEEN " : " BETWEEN ");
      WriteExpr(os, *e.children[1]);
      os << " AND ";
      WriteExpr(os, *e.children[2]);
      os << ")";
      return;
    case Expr::Kind::kIn:
      os << "(";
      WriteExpr(os, *e.children[0]);
      os << (e.negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < e.children.size(); ++i) {
        if (i > 1) os << ", ";
        WriteExpr(os, *e.children[i]);
      }
      os << "))";
      return;
    case Expr::Kind::kLike:
      os << "(";
      WriteExpr(os, *e.children[0]);
      os << (e.negated ? " NOT LIKE " : " LIKE ");
      WriteExpr(os, *e.children[1]);
      os << ")";
      return;
    case Expr::Kind::kIsNull:
      os << "(";
      WriteExpr(os, *e.children[0]);
      os << (e.negated ? " IS NOT NULL" : " IS NULL");
      os << ")";
      return;
    case Expr::Kind::kArith:
      os << "(";
      WriteExpr(os, *e.children[0]);
      os << " " << ArithOpName(e.arith_op) << " ";
      WriteExpr(os, *e.children[1]);
      os << ")";
      return;
  }
}

/// Canonicalize the WHERE clause's top-level conjunction: flatten the AND
/// tree, rewrite each non-negated BETWEEN conjunct into its >=/<= bound
/// pair, render every conjunct, and sort the renderings. Trivially
/// equivalent predicates (`a >= 1 AND a <= 5` vs `a BETWEEN 1 AND 5`,
/// commuted conjunct order) then share one fingerprint. Both rewrites are
/// confined to *top-level positive* conjuncts, where a definitely-true
/// match is all row filtering needs — under a NOT, BETWEEN with a NULL
/// bound (unknown) and its bound pair (possibly false) diverge, so nested
/// occurrences are left alone.
void CollectConjuncts(const Expr& e, std::vector<std::string>& out) {
  if (e.kind == Expr::Kind::kBinary && e.op == BinaryOp::kAnd) {
    CollectConjuncts(*e.children[0], out);
    CollectConjuncts(*e.children[1], out);
    return;
  }
  if (e.kind == Expr::Kind::kBetween && !e.negated) {
    std::ostringstream lo, hi;
    lo << "(";
    WriteExpr(lo, *e.children[0]);
    lo << " >= ";
    WriteExpr(lo, *e.children[1]);
    lo << ")";
    hi << "(";
    WriteExpr(hi, *e.children[0]);
    hi << " <= ";
    WriteExpr(hi, *e.children[2]);
    hi << ")";
    out.push_back(lo.str());
    out.push_back(hi.str());
    return;
  }
  std::ostringstream os;
  WriteExpr(os, e);
  out.push_back(os.str());
}

void WriteWhereNormalized(std::ostream& os, const Expr& where) {
  std::vector<std::string> conjuncts;
  CollectConjuncts(where, conjuncts);
  std::sort(conjuncts.begin(), conjuncts.end());
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i) os << " AND ";
    os << conjuncts[i];
  }
}

}  // namespace

std::string CanonicalExpr(const Expr& e) {
  std::ostringstream os;
  WriteExpr(os, e);
  return os.str();
}

std::string CanonicalSql(const SelectStmt& stmt) {
  std::ostringstream os;
  os << "SELECT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i) os << ", ";
    const SelectItem& item = stmt.items[i];
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        os << "*";
        break;
      case SelectItem::Kind::kColumn:
      case SelectItem::Kind::kScalar:
        WriteExpr(os, *item.expr);
        break;
      case SelectItem::Kind::kAggregate:
        if (item.func == AggFunc::kCountStar) {
          os << "COUNT(*)";
        } else {
          os << AggFuncName(item.func) << "(";
          WriteExpr(os, *item.expr);
          os << ")";
        }
        break;
    }
  }
  os << " FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i) os << ", ";
    os << ToUpper(stmt.from[i].table);
    if (!stmt.from[i].alias.empty()) os << " " << ToUpper(stmt.from[i].alias);
  }
  if (stmt.where) {
    os << " WHERE ";
    WriteWhereNormalized(os, *stmt.where);
  }
  if (!stmt.group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i) os << ", ";
      WriteExpr(os, *stmt.group_by[i]);
    }
  }
  if (!stmt.order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i) os << ", ";
      WriteExpr(os, *stmt.order_by[i].column);
      if (stmt.order_by[i].descending) os << " DESC";
    }
  }
  if (stmt.limit) os << " LIMIT " << *stmt.limit;
  return os.str();
}

std::string Fingerprint(const SelectStmt& stmt, const std::vector<Value>& params) {
  std::string key = CanonicalSql(stmt);
  if (!params.empty()) {
    key += " /*";
    for (const Value& p : params) {
      key += ' ';
      key += p.ToString();
    }
    key += " */";
  }
  return key;
}

}  // namespace qc::sql
