#include "sql/fingerprint.h"

#include <sstream>

#include "common/strings.h"

namespace qc::sql {

namespace {

void WriteExpr(std::ostream& os, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      os << e.value.ToString();
      return;
    case Expr::Kind::kParam:
      os << "$" << (e.param_index + 1);
      return;
    case Expr::Kind::kColumn:
      if (!e.qualifier.empty()) os << ToUpper(e.qualifier) << ".";
      os << ToUpper(e.column);
      return;
    case Expr::Kind::kUnaryNot:
      os << "(NOT ";
      WriteExpr(os, *e.children[0]);
      os << ")";
      return;
    case Expr::Kind::kBinary:
      os << "(";
      WriteExpr(os, *e.children[0]);
      os << " " << BinaryOpName(e.op) << " ";
      WriteExpr(os, *e.children[1]);
      os << ")";
      return;
    case Expr::Kind::kBetween:
      os << "(";
      WriteExpr(os, *e.children[0]);
      os << (e.negated ? " NOT BETWEEN " : " BETWEEN ");
      WriteExpr(os, *e.children[1]);
      os << " AND ";
      WriteExpr(os, *e.children[2]);
      os << ")";
      return;
    case Expr::Kind::kIn:
      os << "(";
      WriteExpr(os, *e.children[0]);
      os << (e.negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < e.children.size(); ++i) {
        if (i > 1) os << ", ";
        WriteExpr(os, *e.children[i]);
      }
      os << "))";
      return;
    case Expr::Kind::kLike:
      os << "(";
      WriteExpr(os, *e.children[0]);
      os << (e.negated ? " NOT LIKE " : " LIKE ");
      WriteExpr(os, *e.children[1]);
      os << ")";
      return;
    case Expr::Kind::kIsNull:
      os << "(";
      WriteExpr(os, *e.children[0]);
      os << (e.negated ? " IS NOT NULL" : " IS NULL");
      os << ")";
      return;
  }
}

}  // namespace

std::string CanonicalExpr(const Expr& e) {
  std::ostringstream os;
  WriteExpr(os, e);
  return os.str();
}

std::string CanonicalSql(const SelectStmt& stmt) {
  std::ostringstream os;
  os << "SELECT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i) os << ", ";
    const SelectItem& item = stmt.items[i];
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        os << "*";
        break;
      case SelectItem::Kind::kColumn:
        WriteExpr(os, *item.expr);
        break;
      case SelectItem::Kind::kAggregate:
        if (item.func == AggFunc::kCountStar) {
          os << "COUNT(*)";
        } else {
          os << AggFuncName(item.func) << "(";
          WriteExpr(os, *item.expr);
          os << ")";
        }
        break;
    }
  }
  os << " FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i) os << ", ";
    os << ToUpper(stmt.from[i].table);
    if (!stmt.from[i].alias.empty()) os << " " << ToUpper(stmt.from[i].alias);
  }
  if (stmt.where) {
    os << " WHERE ";
    WriteExpr(os, *stmt.where);
  }
  if (!stmt.group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i) os << ", ";
      WriteExpr(os, *stmt.group_by[i]);
    }
  }
  if (!stmt.order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i) os << ", ";
      WriteExpr(os, *stmt.order_by[i].column);
      if (stmt.order_by[i].descending) os << " DESC";
    }
  }
  if (stmt.limit) os << " LIMIT " << *stmt.limit;
  return os.str();
}

std::string Fingerprint(const SelectStmt& stmt, const std::vector<Value>& params) {
  std::string key = CanonicalSql(stmt);
  if (!params.empty()) {
    key += " /*";
    for (const Value& p : params) {
      key += ' ';
      key += p.ToString();
    }
    key += " */";
  }
  return key;
}

}  // namespace qc::sql
