// Query execution: runs a BoundQuery against its tables.
//
// Two engines share one planner (sql/planner.h) and one result-shaping
// layer (sql/exec_common.h): Execute() first offers the query to the
// vectorized batch engine (sql/vectorized.h, the fast miss path) and falls
// back to the row-at-a-time tree-walker in this file for every shape the
// batch engine does not cover (joins in particular). Both are index-aware —
// equality/range conjuncts (including OR-of-ranges on one column, the shape
// of Set Query's Q3B) feed candidate row ids — because the benchmarks
// execute every cache miss for real, and a pure scan engine would make the
// paper-scale workloads impractically slow. See docs/EXECUTION.md.
#pragma once

#include <optional>
#include <vector>

#include "sql/binder.h"
#include "sql/result.h"

namespace qc::sql {

/// Execute `query` with `params`: vectorized when the shape is covered,
/// row-at-a-time otherwise. Throws BindError if the parameter vector is
/// shorter than the statement's parameter count.
ResultSet Execute(const BoundQuery& query, const std::vector<Value>& params = {});

/// Force the row-at-a-time engine (any query shape). This is the oracle the
/// randomized differential suite compares the vectorized engine against.
ResultSet ExecuteRowAtATime(const BoundQuery& query, const std::vector<Value>& params = {});

/// Process-wide counters for the row engine's slow paths.
struct RowEngineStats {
  /// Row pairs enumerated by the quadratic nested-loop join fallback (taken
  /// only when a two-table WHERE has no equi-join conjunct). Monotonic.
  uint64_t join_nested_loop_rows = 0;
};

RowEngineStats GetRowEngineStats();

/// Scalar expression evaluation against a joined tuple: `rows[slot]` is the
/// current row id in `query.table(slot)`. Exposed for the evaluator's tests
/// and for the row-aware invalidation policy.
Value EvalScalar(const BoundQuery& query, const Expr& expr,
                 const std::vector<storage::RowId>& rows, const std::vector<Value>& params);

/// Three-valued predicate evaluation (SQL semantics: comparisons against
/// NULL are unknown; WHERE keeps only definite-true rows).
std::optional<bool> EvalPredicate(const BoundQuery& query, const Expr& expr,
                                  const std::vector<storage::RowId>& rows,
                                  const std::vector<Value>& params);

/// Evaluate a single-table predicate against an explicit row image instead
/// of a stored row (used by row-aware invalidation to test old/new row
/// versions that may no longer be in the table).
std::optional<bool> EvalPredicateOnRow(const Expr& expr, const storage::Row& row,
                                       const std::vector<Value>& params, int32_t table_slot);

}  // namespace qc::sql
