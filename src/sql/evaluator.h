// Query execution: runs a BoundQuery against its tables.
//
// The evaluator is deliberately index-aware — it picks an access path from
// indexed equality/range conjuncts (including OR-of-ranges on one column,
// the shape of Set Query's Q3B) and hash-joins two-table queries — because
// the benchmarks execute every cache miss for real, and a pure scan engine
// would make the paper-scale workloads impractically slow.
#pragma once

#include <optional>
#include <vector>

#include "sql/binder.h"
#include "sql/result.h"

namespace qc::sql {

/// Execute `query` with `params`. Throws BindError if the parameter vector
/// is shorter than the statement's parameter count.
ResultSet Execute(const BoundQuery& query, const std::vector<Value>& params = {});

/// Scalar expression evaluation against a joined tuple: `rows[slot]` is the
/// current row id in `query.table(slot)`. Exposed for the evaluator's tests
/// and for the row-aware invalidation policy.
Value EvalScalar(const BoundQuery& query, const Expr& expr,
                 const std::vector<storage::RowId>& rows, const std::vector<Value>& params);

/// Three-valued predicate evaluation (SQL semantics: comparisons against
/// NULL are unknown; WHERE keeps only definite-true rows).
std::optional<bool> EvalPredicate(const BoundQuery& query, const Expr& expr,
                                  const std::vector<storage::RowId>& rows,
                                  const std::vector<Value>& params);

/// Evaluate a single-table predicate against an explicit row image instead
/// of a stored row (used by row-aware invalidation to test old/new row
/// versions that may no longer be in the table).
std::optional<bool> EvalPredicateOnRow(const Expr& expr, const storage::Row& row,
                                       const std::vector<Value>& params, int32_t table_slot);

}  // namespace qc::sql
