// Abstract syntax tree for the SQL subset the middleware caches.
//
// The subset covers everything the paper's workloads need: SELECT with
// projections and aggregates (COUNT/SUM/MIN/MAX/AVG), one- and two-table
// FROM, WHERE with AND/OR/NOT, comparison operators, BETWEEN, IN, LIKE,
// IS [NOT] NULL, GROUP BY, and positional parameters ($1, $2, ... or ?).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace qc::sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp { kAnd, kOr, kEq, kNe, kLt, kLe, kGt, kGe };

const char* BinaryOpName(BinaryOp op);

/// True for =, <>, <, <=, >, >= (as opposed to AND/OR).
bool IsComparison(BinaryOp op);

/// Scalar arithmetic operators. Kept separate from BinaryOp so predicate
/// walkers (extractor, semantic index, fingerprint canonicalization) never
/// see an arithmetic operator where they expect a comparison or connective.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* ArithOpName(ArithOp op);

/// Shared scalar semantics for ArithOp, used by both execution engines so
/// results stay cell-for-cell identical: NULL propagates; `/` always
/// produces a double and divide-by-zero yields NULL; int op int stays int64
/// unless it overflows, in which case it degrades to double (matching the
/// SUM accumulator); a double operand promotes the result to double; a
/// string operand throws BindError.
Value EvalArithValue(ArithOp op, const Value& lhs, const Value& rhs);

/// Expression node. A closed variant-style hierarchy: `kind` selects which
/// members are meaningful. A single struct keeps the walker code (binder,
/// evaluator, dependency extractor, fingerprinter) simple.
struct Expr {
  enum class Kind {
    kLiteral,    // value
    kParam,      // param_index (0-based)
    kColumn,     // qualifier.column; binder fills table_slot/column_index
    kUnaryNot,   // child[0]
    kBinary,     // op, child[0], child[1]
    kBetween,    // child[0] BETWEEN child[1] AND child[2]; negated
    kIn,         // child[0] IN (child[1..]); negated
    kLike,       // child[0] LIKE child[1]; negated
    kIsNull,     // child[0] IS [NOT] NULL; negated
    kArith,      // arith_op, child[0], child[1]; scalar-valued
  };

  Kind kind;

  // kLiteral
  Value value;

  // kParam: 0-based position into the statement's parameter vector.
  uint32_t param_index = 0;

  // kColumn (source form)
  std::string qualifier;  // table name or alias; empty if unqualified
  std::string column;
  // kColumn (bound form, filled by the binder)
  int32_t table_slot = -1;    // index into the FROM list
  int32_t column_index = -1;  // index into that table's schema

  // kBinary
  BinaryOp op = BinaryOp::kAnd;

  // kArith
  ArithOp arith_op = ArithOp::kAdd;

  // kBetween / kIn / kLike / kIsNull
  bool negated = false;

  std::vector<ExprPtr> children;

  static ExprPtr Literal(Value v);
  static ExprPtr Param(uint32_t index);
  static ExprPtr Column(std::string qualifier, std::string column);
  static ExprPtr Not(ExprPtr child);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Between(ExprPtr subject, ExprPtr lo, ExprPtr hi, bool negated);
  static ExprPtr In(ExprPtr subject, std::vector<ExprPtr> list, bool negated);
  static ExprPtr Like(ExprPtr subject, ExprPtr pattern, bool negated);
  static ExprPtr IsNull(ExprPtr subject, bool negated);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

  /// Deep copy (needed to instantiate parameterized statement skeletons).
  ExprPtr Clone() const;
};

enum class AggFunc { kNone, kCountStar, kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc f);

/// One SELECT-list entry: `*`, a column, a scalar expression (arithmetic
/// over columns/literals/params), or an aggregate over a column.
struct SelectItem {
  enum class Kind { kStar, kColumn, kScalar, kAggregate };
  Kind kind = Kind::kStar;
  AggFunc func = AggFunc::kNone;  // kAggregate
  ExprPtr expr;                   // kColumn / kScalar / kAggregate argument (null for COUNT(*))
};

struct TableRef {
  std::string table;
  std::string alias;  // empty if none; lookups fall back to the table name

  const std::string& effective_name() const { return alias.empty() ? table : alias; }
};

/// ORDER BY entry: a projected column (the subset we support — the key
/// must appear in the SELECT list) plus direction.
struct OrderKey {
  ExprPtr column;
  bool descending = false;
};

/// A parsed SELECT statement.
struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;                 // may be null
  std::vector<ExprPtr> group_by; // column expressions
  std::vector<OrderKey> order_by;
  std::optional<uint64_t> limit;
  uint32_t param_count = 0;      // filled by the parser

  SelectStmt Clone() const;
};

/// A parsed DML statement (INSERT / UPDATE / DELETE). The middleware routes
/// these through the storage layer, so every DML execution feeds the DUP
/// invalidation machinery like any other mutation.
struct DmlStmt {
  enum class Kind { kInsert, kUpdate, kDelete };

  Kind kind = Kind::kInsert;
  std::string table;

  /// kInsert: target columns (empty = full schema order).
  /// kUpdate: SET columns.
  std::vector<std::string> columns;

  /// Values parallel to `columns`; scalar expressions (literals, parameters,
  /// or — for UPDATE — columns of the updated row).
  std::vector<ExprPtr> values;

  ExprPtr where;  // kUpdate / kDelete; null = all rows
  uint32_t param_count = 0;
};

/// Discriminated union of everything the front end parses.
struct AnyStatement {
  enum class Kind { kSelect, kDml };
  Kind kind = Kind::kSelect;
  SelectStmt select;  // kSelect
  DmlStmt dml;        // kDml
};

}  // namespace qc::sql
