#include "cluster/cache_node.h"

#include "common/error.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace qc::cluster {

CacheNodeRuntime::CacheNodeRuntime(CacheNodeConfig config)
    : config_(std::move(config)), ring_(config_.ring_vnodes) {
  if (config_.name.empty()) throw Error("cache node needs a name");
  gate_ = std::make_shared<dup::CdcSequenceGate>();
  ring_.AddNode(config_.name);
  for (const PeerAddress& addr : config_.peers) {
    if (addr.name == config_.name) throw Error("peer list contains this node's own name");
    if (peers_.count(addr.name)) throw Error("duplicate peer name: " + addr.name);
    ring_.AddNode(addr.name);
    auto peer = std::make_unique<Peer>();
    peer->addr = addr;
    peers_.emplace(addr.name, std::move(peer));
  }
}

CacheNodeRuntime::~CacheNodeRuntime() { Stop(); }

middleware::CachedQueryEngine::Options CacheNodeRuntime::DecorateEngineOptions(
    middleware::CachedQueryEngine::Options options) {
  if (options.refresh_on_invalidate) {
    throw Error("refresh-on-invalidate is incompatible with cache-node mode: "
                "the node's local tables hold no data to re-execute against");
  }
  options.subscribe_to_database = false;  // invalidations arrive on the CDC stream
  options.seq_gate = gate_;
  options.remote_fetch = [this](const sql::BoundQuery& query, const std::vector<Value>& params) {
    return RemoteFetch(query, params);
  };
  return options;
}

void CacheNodeRuntime::AttachServer(middleware::CachedQueryEngine& engine,
                                    server::QcServer& server) {
  engine_ = &engine;
  server_ = &server;
  server.SetDmlForwarder(
      [this](const std::string& sql, const std::vector<Value>& params) {
        return ForwardDml(sql, params);
      });
  server.SetSelectRouter(
      [this](const std::string& sql, const std::vector<Value>& params) {
        return RouteSelect(sql, params);
      });
  server.SetExtraStats([this, &server] {
    const Counters c = counters();
    std::vector<std::pair<std::string, uint64_t>> entries;
    entries.emplace_back("cluster.cdc_events_applied", c.cdc_events_applied);
    entries.emplace_back("cluster.ring_forwards", c.ring_forwards);
    entries.emplace_back("cluster.gap_flushes", c.gap_flushes);
    // Pushed invalidations to this node's own subscribers — the lease
    // holders (client caches) hanging off this cache node.
    entries.emplace_back("cluster.lease_invalidations", server.stats().cdc_events_sent);
    return entries;
  });
}

void CacheNodeRuntime::Start() {
  if (engine_ == nullptr || server_ == nullptr) {
    throw Error("CacheNodeRuntime::Start before AttachServer");
  }
  if (started_.exchange(true)) return;
  applier_ = std::thread([this] { ApplierLoop(); });
}

void CacheNodeRuntime::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (applier_.joinable()) applier_.join();
  std::lock_guard<std::mutex> lock(upstream_mutex_);
  upstream_.Close();
  for (auto& [name, peer] : peers_) {
    std::lock_guard<std::mutex> peer_lock(peer->mutex);
    peer->client.Close();
  }
}

bool CacheNodeRuntime::WaitForSeq(uint64_t seq, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(applied_mutex_);
  return applied_cv_.wait_for(lock, timeout, [this, seq] { return applied_complete_ >= seq; });
}

CacheNodeRuntime::Counters CacheNodeRuntime::counters() const {
  Counters c;
  c.cdc_events_applied = cdc_events_applied_.load(std::memory_order_relaxed);
  c.ring_forwards = ring_forwards_.load(std::memory_order_relaxed);
  c.gap_flushes = gap_flushes_.load(std::memory_order_relaxed);
  return c;
}

// --- Upstream fill / DML ---------------------------------------------------

server::QcClient& CacheNodeRuntime::UpstreamLocked() {
  if (!upstream_.connected()) {
    upstream_.Connect(config_.upstream_host, config_.upstream_port);
  }
  return upstream_;
}

middleware::CachedQueryEngine::RemoteFill CacheNodeRuntime::RemoteFetch(
    const sql::BoundQuery& query, const std::vector<Value>& params) {
  const std::string sql = sql::CanonicalSql(query.stmt());
  std::lock_guard<std::mutex> lock(upstream_mutex_);
  for (int attempt = 0;; ++attempt) {
    try {
      server::QcClient::SeqQueryResult reply = UpstreamLocked().QuerySeq(sql, params);
      return {std::make_shared<const sql::ResultSet>(std::move(reply.result)),
              reply.observed_seq};
    } catch (const server::NetError&) {
      // A broken connection mid-call leaves no usable stream; reconnect
      // once, then let the error surface to the requesting client.
      upstream_.Close();
      if (attempt > 0) throw;
    }
  }
}

uint64_t CacheNodeRuntime::ForwardDml(const std::string& sql, const std::vector<Value>& params) {
  std::lock_guard<std::mutex> lock(upstream_mutex_);
  for (int attempt = 0;; ++attempt) {
    try {
      return UpstreamLocked().Dml(sql, params);
    } catch (const server::NetError&) {
      upstream_.Close();
      if (attempt > 0) throw;
    }
  }
}

// --- Ring routing ----------------------------------------------------------

std::optional<middleware::CachedQueryEngine::ExecuteResult> CacheNodeRuntime::RouteSelect(
    const std::string& sql, const std::vector<Value>& params) {
  std::string owner;
  try {
    const sql::SelectStmt stmt = sql::Parse(sql);
    owner = ring_.OwnerOf(sql::Fingerprint(stmt, params));
  } catch (const std::exception&) {
    return std::nullopt;  // unparseable: the local engine reports the error
  }
  if (owner == config_.name) return std::nullopt;  // ours: serve locally

  Peer& peer = *peers_.at(owner);
  std::lock_guard<std::mutex> lock(peer.mutex);
  for (int attempt = 0;; ++attempt) {
    try {
      if (!peer.client.connected()) peer.client.Connect(peer.addr.host, peer.addr.port);
      server::QcClient::QueryResult reply = peer.client.Query(sql, params);
      ring_forwards_.fetch_add(1, std::memory_order_relaxed);
      return middleware::CachedQueryEngine::ExecuteResult{
          std::make_shared<const sql::ResultSet>(std::move(reply.result)), reply.cache_hit};
    } catch (const server::NetError&) {
      peer.client.Close();
      // Peer down: after one reconnect attempt, degrade to a local fill.
      // Sound (the gate and epoch guards still apply locally) at the cost
      // of a duplicate cached copy until the peer returns.
      if (attempt > 0) return std::nullopt;
    }
  }
}

// --- CDC applier -----------------------------------------------------------

void CacheNodeRuntime::MarkApplied(uint64_t seq) {
  {
    std::lock_guard<std::mutex> lock(applied_mutex_);
    if (applied_complete_ < seq) applied_complete_ = seq;
  }
  applied_cv_.notify_all();
}

void CacheNodeRuntime::ApplierLoop() {
  const int poll_ms = static_cast<int>(config_.cdc_poll.count());
  while (!stop_.load(std::memory_order_relaxed)) {
    try {
      server::QcClient stream;
      stream.Connect(config_.upstream_host, config_.upstream_port);
      const uint64_t current = stream.SubscribeCdc(gate_->applied());
      if (current > gate_->applied()) {
        // Missed stream window (first subscribe skips this: applied is 0
        // only when current is too, unless records already flowed).
        // Flush everything cached, then fence: Advance() retroactively
        // refuses every in-flight fill that observed a pre-gap sequence.
        engine_->cache().Clear();
        gate_->Advance(current);
        gap_flushes_.fetch_add(1, std::memory_order_relaxed);
      }
      MarkApplied(gate_->applied());
      while (!stop_.load(std::memory_order_relaxed)) {
        std::optional<server::CdcRecord> record = stream.ReadCdcEvent(poll_ms);
        if (!record) continue;  // poll timeout; re-check stop_
        // Gate first, invalidations second: between the two, a racing
        // fill is refused by the gate; after both, it is refused by the
        // epoch snapshot or torn down by the invalidation (the fill
        // registers in the ODG before its guarded Put). Either way no
        // stale entry survives — docs/CLUSTER.md, "Why the applier
        // advances the gate first".
        gate_->Advance(record->seq);
        engine_->dup_engine().OnBatch(record->AsBatch());
        cdc_events_applied_.fetch_add(1, std::memory_order_relaxed);
        // Relay downstream (push-lease client caches) with the upstream
        // sequence numbering intact.
        server_->PublishCdc(*record);
        MarkApplied(record->seq);
      }
      return;
    } catch (const Error&) {
      if (stop_.load(std::memory_order_relaxed)) return;
      std::this_thread::sleep_for(config_.reconnect_backoff);
    }
  }
}

}  // namespace qc::cluster
