// CacheNodeRuntime — the glue that turns a qcached process into a member
// of a real cluster (docs/CLUSTER.md): one storage node owns the data and
// publishes a sequenced CDC invalidation stream; N cache nodes serve
// SELECTs from their own GPS caches, partitioned by consistent-hash
// fingerprint ownership, and apply the stream instead of observing a local
// database.
//
// A cache node's data paths, all wired here:
//   * misses  -> QUERY_SEQ to the storage node (engine Options::remote_fetch);
//     the reply carries the CDC sequence the upstream read observed, which
//     feeds the sequence-gate admission check (dup::CdcSequenceGate);
//   * DML     -> forwarded verbatim to the storage node (QcServer DML
//     forwarder); the resulting invalidations return on the CDC stream;
//   * SELECTs for fingerprints another cache node owns -> forwarded to the
//     owner (QcServer select router over cluster::HashRing), so each
//     result is cached on exactly one node;
//   * CDC records -> the applier thread Advance()s the gate, applies the
//     record through the node's DUP engine, then relays it to this node's
//     own subscribers (push-lease client caches) via QcServer::PublishCdc.
//
// Ordering is load-bearing: the gate is advanced *before* the record's
// invalidations run, so a racing remote fill that observed an older
// sequence is refused at admission rather than cached forever; and a
// resubscribe gap (missed stream window) flushes the cache and advances
// the gate to the server's current sequence, retroactively refusing every
// pre-gap fill. The full soundness argument lives in docs/CLUSTER.md.
//
// Forwarding topology is a DAG — client -> cache node -> owning cache
// node -> storage node — so forwards cannot cycle or deadlock: a node
// never forwards a fingerprint it owns, and ownership is consistent
// across nodes (same ring member list).
//
// @thread_safety Construct, DecorateEngineOptions, AttachServer and
// Start() must run in that order on one thread before traffic; Stop() may
// be called from any thread and must precede destruction of the engine
// and server. The upstream client and each peer client are mutex-guarded
// (QcClient itself is single-threaded); the applier thread owns its own
// connection. Counters are relaxed atomics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/ring.h"
#include "dup/epochs.h"
#include "middleware/query_engine.h"
#include "server/client.h"
#include "server/server.h"

namespace qc::cluster {

struct PeerAddress {
  std::string name;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct CacheNodeConfig {
  /// This node's ring name; must be present in no peer entry.
  std::string name = "cache0";

  /// The storage node (fills, DML, CDC stream).
  std::string upstream_host = "127.0.0.1";
  uint16_t upstream_port = 0;

  /// The other cache nodes; every node must be configured with the same
  /// member set (its own name plus its peers) or ownership diverges.
  std::vector<PeerAddress> peers;

  size_t ring_vnodes = 64;

  /// Applier reconnect backoff after a lost upstream connection.
  std::chrono::milliseconds reconnect_backoff{50};

  /// CDC read poll granularity (bounds Stop() latency).
  std::chrono::milliseconds cdc_poll{100};
};

class CacheNodeRuntime {
 public:
  explicit CacheNodeRuntime(CacheNodeConfig config);

  /// Calls Stop().
  ~CacheNodeRuntime();

  CacheNodeRuntime(const CacheNodeRuntime&) = delete;
  CacheNodeRuntime& operator=(const CacheNodeRuntime&) = delete;

  const std::shared_ptr<dup::CdcSequenceGate>& gate() const { return gate_; }
  const HashRing& ring() const { return ring_; }

  /// Rewrite engine options for cache-node duty: no local database
  /// subscription (the CDC stream replaces it), misses filled over
  /// QUERY_SEQ, admissions guarded by this runtime's sequence gate.
  /// Refresh-on-invalidate is refused — a cache node must not re-execute
  /// against its (empty) local tables.
  middleware::CachedQueryEngine::Options DecorateEngineOptions(
      middleware::CachedQueryEngine::Options options);

  /// Install the DML forwarder, the ring select router and the cluster
  /// stats hook on `server`, and remember both objects for the applier.
  /// Must run before server.Start(); both must outlive this runtime's
  /// Stop().
  void AttachServer(middleware::CachedQueryEngine& engine, server::QcServer& server);

  /// Launch the CDC applier thread (connect upstream, SUBSCRIBE, apply
  /// records, relay them downstream). Call after server.Start().
  void Start();

  /// Stop the applier and close every outbound connection. Idempotent.
  void Stop();

  /// Block until every record up to `seq` has been fully applied locally
  /// (gate advanced AND invalidations run AND relayed). Returns false on
  /// timeout. Test/bench helper.
  bool WaitForSeq(uint64_t seq, std::chrono::milliseconds timeout);

  struct Counters {
    uint64_t cdc_events_applied = 0;  // CDC records applied by the applier
    uint64_t ring_forwards = 0;       // SELECTs forwarded to owning peers
    uint64_t gap_flushes = 0;         // resubscribe gaps -> full cache flush
  };
  Counters counters() const;

 private:
  middleware::CachedQueryEngine::RemoteFill RemoteFetch(const sql::BoundQuery& query,
                                                        const std::vector<Value>& params);
  uint64_t ForwardDml(const std::string& sql, const std::vector<Value>& params);
  std::optional<middleware::CachedQueryEngine::ExecuteResult> RouteSelect(
      const std::string& sql, const std::vector<Value>& params);
  void ApplierLoop();
  void MarkApplied(uint64_t seq);

  /// upstream_mutex_ held. Connects lazily; on a transport error the
  /// caller Close()s and retries once (the connection is request-response,
  /// so a failed call leaves no usable stream state).
  server::QcClient& UpstreamLocked();

  CacheNodeConfig config_;
  HashRing ring_;
  std::shared_ptr<dup::CdcSequenceGate> gate_;

  middleware::CachedQueryEngine* engine_ = nullptr;
  server::QcServer* server_ = nullptr;

  // Fill/DML path: one shared upstream connection (workers serialize on
  // the mutex; the QCP client is strictly request-response).
  std::mutex upstream_mutex_;
  server::QcClient upstream_;

  struct Peer {
    PeerAddress addr;
    std::mutex mutex;
    server::QcClient client;
  };
  std::unordered_map<std::string, std::unique_ptr<Peer>> peers_;  // immutable map after ctor

  std::thread applier_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};

  std::mutex applied_mutex_;
  std::condition_variable applied_cv_;
  uint64_t applied_complete_ = 0;  // guarded by applied_mutex_

  std::atomic<uint64_t> cdc_events_applied_{0};
  std::atomic<uint64_t> ring_forwards_{0};
  std::atomic<uint64_t> gap_flushes_{0};
};

}  // namespace qc::cluster
