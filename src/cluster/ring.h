// Consistent-hash ownership of query fingerprints across qcached nodes
// (docs/CLUSTER.md, "Fingerprint ownership").
//
// Each cache node owns a deterministic slice of the fingerprint space:
// every node name is hashed onto a ring at `vnodes_per_node` points, and a
// fingerprint belongs to the first vnode clockwise from its own hash.
// All nodes are configured with the same member list, so they compute the
// same owner for every fingerprint without coordination — a SELECT that
// lands on a non-owner is forwarded to the owner (QcServer's select
// router), keeping exactly one cached copy of each result in the cluster.
// Virtual nodes smooth the distribution; adding or removing one node
// remaps only the slices adjacent to its vnodes (~1/N of the space).
//
// The hash is FNV-1a 64-bit with a murmur3-style avalanche finalizer —
// FNV for its stability (std::hash is implementation-defined and would
// give different rings on different builds of the same cluster), the
// finalizer because raw FNV barely diffuses trailing-byte changes and
// would clump similar SQL texts onto one owner.
//
// @thread_safety Not internally synchronized. Build the ring up front and
// treat it as immutable afterwards (the runtime's usage); concurrent
// OwnerOf calls on a no-longer-mutated ring are safe.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>

namespace qc::cluster {

class HashRing {
 public:
  explicit HashRing(size_t vnodes_per_node = 64);

  /// Add a member; duplicate names are a no-op.
  void AddNode(const std::string& name);

  /// Remove a member and its vnodes; unknown names are a no-op.
  void RemoveNode(const std::string& name);

  bool empty() const { return ring_.empty(); }
  size_t node_count() const { return nodes_.size(); }
  bool HasNode(const std::string& name) const { return nodes_.count(name) != 0; }

  /// The member owning `key`: the first vnode at or clockwise from
  /// Hash(key). Throws Error when the ring is empty.
  const std::string& OwnerOf(std::string_view key) const;

  /// FNV-1a 64-bit + avalanche finalizer (stable across builds and
  /// platforms).
  static uint64_t Hash(std::string_view bytes);

 private:
  size_t vnodes_;
  // point -> owner. On the astronomically unlikely 64-bit collision the
  // lexicographically smaller name wins, keeping the ring independent of
  // AddNode order.
  std::map<uint64_t, std::string> ring_;
  std::set<std::string> nodes_;
};

}  // namespace qc::cluster
