// An in-process cache-node group over one shared database — the
// single-binary twin of the wire cluster (docs/CLUSTER.md): several
// CachedQueryEngine instances, each with its own GPS cache and its own
// dup::CdcSequenceGate, coupled by a sequenced CDC bus instead of TCP.
//
// The bus mirrors the storage node's publisher exactly: every committed
// storage::UpdateBatch is stamped with a monotonically increasing stream
// sequence under the bus mutex (while the mutating statement still holds
// its table write lock), applied to the writing node synchronously, and
// delivered to the peers either after `latency_ticks` logical ticks (the
// deterministic mode the coherence bench measures) or on a background
// applier thread (`async_delivery`, the mode the TSan stress test runs to
// race deliveries against fills). Fingerprint ownership uses the same
// consistent-hash ring as the wire cluster: Execute() routes each
// statement to the node that owns its fingerprint, so one result is
// cached once; ExecuteAt() pins a node explicitly (tests, and the
// paper-faithful "every clone caches everything" experiments).
//
// Each delivery Advance()s the target's sequence gate *before* applying
// the record's invalidations, and each node's fills observe the bus's
// last assigned sequence *before* taking their table read locks — the
// same admission protocol as the wire cluster, so a fill that raced a
// newer delivery is refused instead of cached stale
// (QueryEngineStats::seq_admit_rejects). The paper's Fig. 13 coherence
// measures (tokens sent, remote invalidations per update, staleness
// window) are kept as-is.
//
// @thread_safety (accurate as of the CDC refactor): Execute/ExecuteAt and
// the engines' own entry points may be called from any number of threads
// concurrently with async_delivery deliveries; internal counters are
// atomics and the bus is mutex-ordered. PerformUpdate runs mutations from
// the calling thread and may race *reads*, but concurrent PerformUpdate
// calls from several threads must target different writers and, like the
// engine's DML path, serialize per table via the storage write locks.
// Tick/Quiesce are not synchronized against each other — drive logical
// time from one thread (the benchmarks' usage). In tick mode
// (async_delivery=false) the whole object keeps its original
// single-threaded contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/ring.h"
#include "dup/epochs.h"
#include "middleware/query_engine.h"
#include "server/protocol.h"
#include "storage/database.h"

namespace qc::cluster {

struct ClusterConfig {
  size_t nodes = 3;  // paper Fig. 1 shows three cloned rule servers
  dup::InvalidationPolicy policy = dup::InvalidationPolicy::kValueAware;
  dup::ExtractionOptions extraction;

  /// Invalidation delivery delay in ticks; 0 = synchronous coherence.
  /// Ignored when async_delivery is set.
  uint64_t latency_ticks = 0;

  /// Deliver CDC records to peers from a background applier thread (as
  /// the wire cluster does) instead of on logical ticks. Races real
  /// deliveries against real fills — the TSan stress mode.
  bool async_delivery = false;

  /// Verify every cache hit against a fresh execution to count stale
  /// serves (costs one uncached execution per hit; disable for throughput
  /// benchmarking).
  bool verify_staleness = true;

  cache::GpsCacheConfig cache;
};

struct ClusterStats {
  uint64_t queries = 0;
  uint64_t hits = 0;
  uint64_t stale_hits = 0;             // hits that no longer matched the database
  uint64_t updates = 0;                // update transactions performed
  uint64_t tokens_sent = 0;            // update tokens broadcast to peers
  uint64_t remote_invalidations = 0;   // invalidations performed on peer caches
  uint64_t local_invalidations = 0;    // invalidations at the writing node

  double HitRatePercent() const {
    return queries == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / static_cast<double>(queries);
  }
  double StaleRatePercent() const {
    return hits == 0 ? 0.0 : 100.0 * static_cast<double>(stale_hits) / static_cast<double>(hits);
  }
  double RemoteInvalidationsPerUpdate() const {
    return updates == 0
               ? 0.0
               : static_cast<double>(remote_invalidations) / static_cast<double>(updates);
  }
};

class CacheCluster {
 public:
  /// `db` is the shared backing store; it must outlive the cluster. The
  /// cluster subscribes to it once (statement-level batches) and runs the
  /// CDC bus itself.
  CacheCluster(storage::Database& db, ClusterConfig config);

  /// Unsubscribes from the database and stops the async applier, so
  /// clusters may come and go.
  ~CacheCluster();

  size_t node_count() const { return nodes_.size(); }
  middleware::CachedQueryEngine& node(size_t i) { return *nodes_.at(i).engine; }

  /// The sequence gate of one node (tests: assert admission behavior).
  dup::CdcSequenceGate& gate(size_t i) { return *nodes_.at(i).gate; }

  /// Last sequence assigned by the bus.
  uint64_t committed_seq() const { return bus_seq_.load(std::memory_order_acquire); }

  /// Prepare against the shared catalog (statements are shareable).
  std::shared_ptr<const sql::BoundQuery> Prepare(const std::string& sql);

  /// Execute a query at a specific node / at the node owning the
  /// statement's fingerprint on the consistent-hash ring.
  middleware::CachedQueryEngine::ExecuteResult ExecuteAt(
      size_t node, const std::shared_ptr<const sql::BoundQuery>& query,
      const std::vector<Value>& params = {});
  middleware::CachedQueryEngine::ExecuteResult Execute(
      const std::shared_ptr<const sql::BoundQuery>& query, const std::vector<Value>& params = {});

  /// The ring owner of one statement (tests; mirrors Execute's routing).
  size_t OwnerOf(const std::shared_ptr<const sql::BoundQuery>& query,
                 const std::vector<Value>& params = {}) const;

  /// Run a mutation (storage writes or DML) attributed to `node`. The
  /// node's own cache is invalidated synchronously; peers receive the CDC
  /// records after `latency_ticks` (or asynchronously).
  void PerformUpdate(size_t node, const std::function<void()>& mutation);

  /// Advance logical time by one tick and deliver due invalidation traffic.
  /// Execute/PerformUpdate call this implicitly — one transaction, one tick.
  void Tick();

  /// Deliver everything in flight (e.g. at the end of a measurement).
  /// In async mode, blocks until the applier's queue is drained.
  void Quiesce();

  uint64_t now() const { return now_.load(std::memory_order_relaxed); }
  size_t in_flight() const;
  ClusterStats stats() const;

 private:
  struct Node {
    std::unique_ptr<middleware::CachedQueryEngine> engine;
    std::shared_ptr<dup::CdcSequenceGate> gate;
  };

  struct PendingDelivery {
    uint64_t due_tick;
    size_t target;
    server::CdcRecord record;
  };

  static std::string NodeName(size_t i) { return "node" + std::to_string(i); }

  /// Apply one CDC record to one node: gate first, invalidations second
  /// (the admission protocol's ordering), counting the DUP invalidations
  /// it caused.
  void ApplyTo(size_t target, const server::CdcRecord& record, std::atomic<uint64_t>& counter);

  void OnCommittedBatch(const storage::UpdateBatch& batch);
  void DeliverDue();
  void AsyncApplierLoop();

  storage::Database& db_;
  storage::Database::BatchSubscription subscription_;
  ClusterConfig config_;
  std::vector<Node> nodes_;
  HashRing ring_;

  // The bus. bus_mutex_ orders sequence assignment with enqueueing, like
  // the storage node's cdc_mutex_; bus_seq_ is read lock-free by fills
  // (observe_committed_seq) *before* their table read locks.
  mutable std::mutex bus_mutex_;
  std::atomic<uint64_t> bus_seq_{0};
  std::deque<PendingDelivery> in_flight_;   // tick mode; guarded by bus_mutex_
  std::deque<PendingDelivery> async_queue_; // async mode; guarded by bus_mutex_
  std::condition_variable bus_cv_;
  bool async_busy_ = false;  // applier mid-record; guarded by bus_mutex_
  std::thread async_applier_;
  std::atomic<bool> stop_{false};

  std::atomic<uint64_t> now_{0};
  size_t current_writer_ = 0;  // PerformUpdate only; see @thread_safety

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> stale_hits_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> tokens_sent_{0};
  std::atomic<uint64_t> remote_invalidations_{0};
  std::atomic<uint64_t> local_invalidations_{0};
};

}  // namespace qc::cluster
