// A simulated rule-server group (paper Fig. 1): several cloned server
// instances, each with its own query cache, over one shared database.
//
// The paper measures invalidations-per-transaction (Fig. 13) because
// "distributed caches running on clustered servers or even clients might
// require some coherence traffic for invalidations". This module makes
// that concrete: the node performing an update invalidates its own cache
// synchronously and broadcasts the update token to its peers over a
// message bus with configurable delivery latency (in logical ticks, one
// tick per transaction). Each peer applies DUP against its own ODG on
// delivery. The simulation reports
//   * per-policy coherence traffic (tokens and remote invalidations),
//   * cluster-wide hit rates, and
//   * the staleness window: remote hits served between an update and the
//     arrival of its invalidation token.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "middleware/query_engine.h"
#include "storage/database.h"

namespace qc::cluster {

struct ClusterConfig {
  size_t nodes = 3;  // paper Fig. 1 shows three cloned rule servers
  dup::InvalidationPolicy policy = dup::InvalidationPolicy::kValueAware;
  dup::ExtractionOptions extraction;

  /// Invalidation delivery delay in ticks; 0 = synchronous coherence.
  uint64_t latency_ticks = 0;

  /// Verify every cache hit against a fresh execution to count stale
  /// serves (costs one uncached execution per hit; disable for throughput
  /// benchmarking).
  bool verify_staleness = true;

  cache::GpsCacheConfig cache;
};

struct ClusterStats {
  uint64_t queries = 0;
  uint64_t hits = 0;
  uint64_t stale_hits = 0;             // hits that no longer matched the database
  uint64_t updates = 0;                // update transactions performed
  uint64_t tokens_sent = 0;            // update tokens broadcast to peers
  uint64_t remote_invalidations = 0;   // invalidations performed on peer caches
  uint64_t local_invalidations = 0;    // invalidations at the writing node

  double HitRatePercent() const {
    return queries == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / static_cast<double>(queries);
  }
  double StaleRatePercent() const {
    return hits == 0 ? 0.0 : 100.0 * static_cast<double>(stale_hits) / static_cast<double>(hits);
  }
  double RemoteInvalidationsPerUpdate() const {
    return updates == 0
               ? 0.0
               : static_cast<double>(remote_invalidations) / static_cast<double>(updates);
  }
};

class CacheCluster {
 public:
  /// `db` is the shared backing store; it must outlive the cluster. The
  /// cluster subscribes to it once and routes events itself.
  CacheCluster(storage::Database& db, ClusterConfig config);

  /// Unsubscribes from the database, so clusters may come and go.
  ~CacheCluster();

  size_t node_count() const { return nodes_.size(); }
  middleware::CachedQueryEngine& node(size_t i) { return *nodes_.at(i).engine; }

  /// Prepare against the shared catalog (statements are shareable).
  std::shared_ptr<const sql::BoundQuery> Prepare(const std::string& sql);

  /// Execute a query at a specific node / at the next node round-robin.
  middleware::CachedQueryEngine::ExecuteResult ExecuteAt(
      size_t node, const std::shared_ptr<const sql::BoundQuery>& query,
      const std::vector<Value>& params = {});
  middleware::CachedQueryEngine::ExecuteResult Execute(
      const std::shared_ptr<const sql::BoundQuery>& query, const std::vector<Value>& params = {});

  /// Run a mutation (storage writes or DML) attributed to `node`. The
  /// node's own cache is invalidated synchronously; peers receive the
  /// update tokens after `latency_ticks`.
  void PerformUpdate(size_t node, const std::function<void()>& mutation);

  /// Advance logical time by one tick and deliver due invalidation traffic.
  /// Execute/PerformUpdate call this implicitly — one transaction, one tick.
  void Tick();

  /// Deliver everything in flight (e.g. at the end of a measurement).
  void Quiesce();

  uint64_t now() const { return now_; }
  size_t in_flight() const { return in_flight_.size(); }
  ClusterStats stats() const { return stats_; }

 private:
  struct Node {
    std::unique_ptr<middleware::CachedQueryEngine> engine;
  };

  struct PendingDelivery {
    uint64_t due_tick;
    size_t target;
    storage::UpdateEvent event;
  };

  void DeliverDue();

  storage::Database& db_;
  storage::Database::Subscription subscription_;
  ClusterConfig config_;
  std::vector<Node> nodes_;
  std::deque<PendingDelivery> in_flight_;  // FIFO: due ticks are monotonic
  uint64_t now_ = 0;
  size_t next_node_ = 0;
  size_t current_writer_ = 0;
  bool capturing_ = false;
  std::vector<storage::UpdateEvent> captured_;
  ClusterStats stats_;
};

}  // namespace qc::cluster
