#include "cluster/cluster.h"

#include "common/error.h"

namespace qc::cluster {

CacheCluster::CacheCluster(storage::Database& db, ClusterConfig config)
    : db_(db), config_(std::move(config)) {
  if (config_.nodes == 0) throw Error("cluster needs at least one node");
  nodes_.reserve(config_.nodes);
  for (size_t i = 0; i < config_.nodes; ++i) {
    middleware::CachedQueryEngine::Options options;
    options.policy = config_.policy;
    options.extraction = config_.extraction;
    options.cache = config_.cache;
    if (!options.cache.disk_directory.empty()) {
      // Per-node spill areas must not collide.
      options.cache.disk_directory += "/node" + std::to_string(i);
    }
    options.subscribe_to_database = false;  // the cluster routes events
    Node node;
    node.engine = std::make_unique<middleware::CachedQueryEngine>(db_, options);
    nodes_.push_back(std::move(node));
  }

  // One subscription for the whole cluster: events raised inside
  // PerformUpdate are captured and routed; events raised outside any
  // PerformUpdate window are treated as node-0 writes (convenience for
  // tests that mutate the database directly).
  subscription_ = db_.Subscribe([this](const storage::UpdateEvent& event) {
    if (capturing_) {
      captured_.push_back(event);
    } else {
      nodes_[0].engine->dup_engine().OnUpdate(event);
      for (size_t i = 1; i < nodes_.size(); ++i) {
        in_flight_.push_back({now_ + config_.latency_ticks, i, event});
        ++stats_.tokens_sent;
      }
      DeliverDue();
    }
  });
}

CacheCluster::~CacheCluster() { db_.Unsubscribe(subscription_); }

std::shared_ptr<const sql::BoundQuery> CacheCluster::Prepare(const std::string& sql) {
  // All nodes share the catalog; prepare through node 0.
  return nodes_[0].engine->Prepare(sql);
}

middleware::CachedQueryEngine::ExecuteResult CacheCluster::ExecuteAt(
    size_t node_index, const std::shared_ptr<const sql::BoundQuery>& query,
    const std::vector<Value>& params) {
  Tick();
  middleware::CachedQueryEngine& engine = *nodes_.at(node_index).engine;
  auto outcome = engine.Execute(query, params);
  ++stats_.queries;
  if (outcome.cache_hit) {
    ++stats_.hits;
    if (config_.verify_staleness &&
        !outcome.result->Equals(engine.ExecuteUncached(*query, params))) {
      ++stats_.stale_hits;
    }
  }
  return outcome;
}

middleware::CachedQueryEngine::ExecuteResult CacheCluster::Execute(
    const std::shared_ptr<const sql::BoundQuery>& query, const std::vector<Value>& params) {
  const size_t node_index = next_node_;
  next_node_ = (next_node_ + 1) % nodes_.size();
  return ExecuteAt(node_index, query, params);
}

void CacheCluster::PerformUpdate(size_t node_index, const std::function<void()>& mutation) {
  if (node_index >= nodes_.size()) throw Error("bad cluster node index");
  Tick();
  current_writer_ = node_index;
  capturing_ = true;
  captured_.clear();
  mutation();
  capturing_ = false;
  ++stats_.updates;

  for (const storage::UpdateEvent& event : captured_) {
    // Local invalidation is synchronous (the writer's setter runs the
    // generated invalidation code, paper Fig. 6).
    auto& writer = *nodes_[current_writer_].engine;
    const uint64_t before = writer.dup_stats().invalidations;
    writer.dup_engine().OnUpdate(event);
    stats_.local_invalidations += writer.dup_stats().invalidations - before;

    // Peers get the update token over the bus.
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (i == current_writer_) continue;
      in_flight_.push_back({now_ + config_.latency_ticks, i, event});
      ++stats_.tokens_sent;
    }
  }
  captured_.clear();
  DeliverDue();
}

void CacheCluster::Tick() {
  ++now_;
  DeliverDue();
}

void CacheCluster::Quiesce() {
  while (!in_flight_.empty()) Tick();
}

void CacheCluster::DeliverDue() {
  while (!in_flight_.empty() && in_flight_.front().due_tick <= now_) {
    PendingDelivery delivery = std::move(in_flight_.front());
    in_flight_.pop_front();
    auto& engine = *nodes_[delivery.target].engine;
    const uint64_t before = engine.dup_stats().invalidations;
    engine.dup_engine().OnUpdate(delivery.event);
    stats_.remote_invalidations += engine.dup_stats().invalidations - before;
  }
}

}  // namespace qc::cluster
