#include "cluster/cluster.h"

#include "common/error.h"
#include "sql/fingerprint.h"

namespace qc::cluster {

CacheCluster::CacheCluster(storage::Database& db, ClusterConfig config)
    : db_(db), config_(std::move(config)) {
  if (config_.nodes == 0) throw Error("cluster needs at least one node");
  nodes_.reserve(config_.nodes);
  for (size_t i = 0; i < config_.nodes; ++i) {
    Node node;
    node.gate = std::make_shared<dup::CdcSequenceGate>();
    middleware::CachedQueryEngine::Options options;
    options.policy = config_.policy;
    options.extraction = config_.extraction;
    options.cache = config_.cache;
    if (!options.cache.disk_directory.empty()) {
      // Per-node spill areas must not collide.
      options.cache.disk_directory += "/node" + std::to_string(i);
    }
    options.subscribe_to_database = false;  // the CDC bus routes invalidations
    options.seq_gate = node.gate;
    // A fill observes the bus's last assigned sequence before taking its
    // table read locks (the engine loads this before LockTablesShared), so
    // the gate can refuse it if a newer record was applied meanwhile.
    // Sound because the writer still holds the table write lock when the
    // sequence is assigned: a read that starts after the release store of
    // seq S can only begin once that write lock is gone, so it sees the
    // data of every record up to S.
    options.observe_committed_seq = [this] {
      return bus_seq_.load(std::memory_order_acquire);
    };
    node.engine = std::make_unique<middleware::CachedQueryEngine>(db_, options);
    nodes_.push_back(std::move(node));
    ring_.AddNode(NodeName(i));
  }

  // One statement-level batch subscription for the whole cluster: the bus
  // stamps each committed batch with a sequence, applies it to the writing
  // node synchronously (writes made outside any PerformUpdate window count
  // as node-0 writes — convenience for tests that mutate the database
  // directly), and queues deliveries to the peers.
  subscription_ = db_.SubscribeBatch(
      [this](const storage::UpdateBatch& batch) { OnCommittedBatch(batch); });

  if (config_.async_delivery) {
    async_applier_ = std::thread([this] { AsyncApplierLoop(); });
  }
}

CacheCluster::~CacheCluster() {
  db_.Unsubscribe(subscription_);
  {
    std::lock_guard<std::mutex> lock(bus_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  bus_cv_.notify_all();
  if (async_applier_.joinable()) async_applier_.join();
}

std::shared_ptr<const sql::BoundQuery> CacheCluster::Prepare(const std::string& sql) {
  // All nodes share the catalog; prepare through node 0.
  return nodes_[0].engine->Prepare(sql);
}

middleware::CachedQueryEngine::ExecuteResult CacheCluster::ExecuteAt(
    size_t node_index, const std::shared_ptr<const sql::BoundQuery>& query,
    const std::vector<Value>& params) {
  Tick();
  middleware::CachedQueryEngine& engine = *nodes_.at(node_index).engine;
  auto outcome = engine.Execute(query, params);
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (outcome.cache_hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (config_.verify_staleness &&
        !outcome.result->Equals(engine.ExecuteUncached(*query, params))) {
      stale_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return outcome;
}

middleware::CachedQueryEngine::ExecuteResult CacheCluster::Execute(
    const std::shared_ptr<const sql::BoundQuery>& query, const std::vector<Value>& params) {
  return ExecuteAt(OwnerOf(query, params), query, params);
}

size_t CacheCluster::OwnerOf(const std::shared_ptr<const sql::BoundQuery>& query,
                             const std::vector<Value>& params) const {
  const std::string& name = ring_.OwnerOf(sql::Fingerprint(query->stmt(), params));
  // Members are named by NodeName(), so the index is the "node" suffix.
  return static_cast<size_t>(std::stoul(name.substr(4)));
}

void CacheCluster::PerformUpdate(size_t node_index, const std::function<void()>& mutation) {
  if (node_index >= nodes_.size()) throw Error("bad cluster node index");
  Tick();
  current_writer_ = node_index;
  mutation();  // each committed statement runs OnCommittedBatch synchronously
  current_writer_ = 0;
  updates_.fetch_add(1, std::memory_order_relaxed);
  DeliverDue();
}

void CacheCluster::OnCommittedBatch(const storage::UpdateBatch& batch) {
  if (batch.empty()) return;
  const size_t writer = current_writer_;
  PendingDelivery prototype;
  prototype.target = 0;
  prototype.record.table = std::string(batch.table);
  prototype.record.events.assign(batch.begin(), batch.end());
  {
    std::lock_guard<std::mutex> lock(bus_mutex_);
    const uint64_t seq = bus_seq_.load(std::memory_order_relaxed) + 1;
    prototype.record.seq = seq;
    prototype.due_tick = now_.load(std::memory_order_relaxed) + config_.latency_ticks;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (i == writer) continue;
      PendingDelivery delivery = prototype;
      delivery.target = i;
      (config_.async_delivery ? async_queue_ : in_flight_).push_back(std::move(delivery));
      tokens_sent_.fetch_add(batch.count, std::memory_order_relaxed);
    }
    // Publish the sequence only after the deliveries are queued, mirroring
    // the storage node's publisher: a fill that observes seq S is
    // guaranteed its gate will eventually see every record up to S.
    bus_seq_.store(seq, std::memory_order_release);
  }
  // Local invalidation is synchronous (the writer's setter runs the
  // generated invalidation code, paper Fig. 6).
  ApplyTo(writer, prototype.record, local_invalidations_);
  if (config_.async_delivery) {
    bus_cv_.notify_all();
  } else if (config_.latency_ticks == 0) {
    DeliverDue();  // synchronous coherence: peers converge before the write returns
  }
}

void CacheCluster::ApplyTo(size_t target, const server::CdcRecord& record,
                           std::atomic<uint64_t>& counter) {
  Node& node = nodes_[target];
  // Gate first, invalidations second — the same ordering as the wire
  // applier (docs/CLUSTER.md, "Why the applier advances the gate first"):
  // a fill racing this delivery is refused by the gate or torn down by the
  // invalidation, never cached stale.
  node.gate->Advance(record.seq);
  const uint64_t before = node.engine->dup_stats().invalidations;
  node.engine->dup_engine().OnBatch(record.AsBatch());
  counter.fetch_add(node.engine->dup_stats().invalidations - before,
                    std::memory_order_relaxed);
}

void CacheCluster::Tick() {
  now_.fetch_add(1, std::memory_order_relaxed);
  DeliverDue();
}

void CacheCluster::DeliverDue() {
  std::vector<PendingDelivery> due;
  {
    std::lock_guard<std::mutex> lock(bus_mutex_);
    const uint64_t now = now_.load(std::memory_order_relaxed);
    while (!in_flight_.empty() && in_flight_.front().due_tick <= now) {
      due.push_back(std::move(in_flight_.front()));
      in_flight_.pop_front();
    }
  }
  for (const PendingDelivery& delivery : due) {
    ApplyTo(delivery.target, delivery.record, remote_invalidations_);
  }
}

void CacheCluster::Quiesce() {
  if (config_.async_delivery) {
    std::unique_lock<std::mutex> lock(bus_mutex_);
    bus_cv_.wait(lock, [this] { return async_queue_.empty() && !async_busy_; });
    return;
  }
  while (in_flight() != 0) Tick();
}

void CacheCluster::AsyncApplierLoop() {
  std::unique_lock<std::mutex> lock(bus_mutex_);
  while (true) {
    bus_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) || !async_queue_.empty();
    });
    if (async_queue_.empty()) return;  // stop requested and drained
    PendingDelivery delivery = std::move(async_queue_.front());
    async_queue_.pop_front();
    async_busy_ = true;
    lock.unlock();
    ApplyTo(delivery.target, delivery.record, remote_invalidations_);
    lock.lock();
    async_busy_ = false;
    bus_cv_.notify_all();  // wake Quiesce()
  }
}

size_t CacheCluster::in_flight() const {
  std::lock_guard<std::mutex> lock(bus_mutex_);
  return in_flight_.size() + async_queue_.size() + (async_busy_ ? 1 : 0);
}

ClusterStats CacheCluster::stats() const {
  ClusterStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.stale_hits = stale_hits_.load(std::memory_order_relaxed);
  s.updates = updates_.load(std::memory_order_relaxed);
  s.tokens_sent = tokens_sent_.load(std::memory_order_relaxed);
  s.remote_invalidations = remote_invalidations_.load(std::memory_order_relaxed);
  s.local_invalidations = local_invalidations_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace qc::cluster
