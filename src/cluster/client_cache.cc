#include "cluster/client_cache.h"

namespace qc::cluster {

ClientCache::ClientCache(middleware::CachedQueryEngine& origin, ClientCacheConfig config)
    : origin_(origin), config_(std::move(config)) {
  cache::GpsCacheConfig cache_config;
  cache_config.memory_budget_bytes = config_.memory_budget_bytes;
  cache_config.memory_max_entries = config_.max_entries;
  cache_config.now = config_.now;
  local_ = std::make_unique<cache::GpsCache>(cache_config);
}

middleware::CachedQueryEngine::ExecuteResult ClientCache::Execute(
    const std::shared_ptr<const sql::BoundQuery>& query, const std::vector<Value>& params) {
  ++stats_.requests;
  const std::string key = sql::Fingerprint(query->stmt(), params);

  if (cache::CacheValuePtr hit = local_->Get(key)) {
    ++stats_.local_hits;
    auto value = std::static_pointer_cast<const middleware::ResultValue>(hit);
    if (config_.verify_staleness &&
        !value->result()->Equals(origin_.ExecuteUncached(*query, params))) {
      ++stats_.stale_local_hits;
    }
    return {value->result(), true};
  }

  ++stats_.origin_requests;
  auto outcome = origin_.Execute(query, params);
  local_->Put(key, std::make_shared<middleware::ResultValue>(outcome.result), config_.ttl);
  return outcome;
}

void ClientCache::Refresh(const std::shared_ptr<const sql::BoundQuery>& query,
                          const std::vector<Value>& params) {
  local_->Invalidate(sql::Fingerprint(query->stmt(), params));
}

}  // namespace qc::cluster
