#include "cluster/client_cache.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace qc::cluster {

namespace {

struct ParsedSelect {
  std::string key;
  std::vector<std::string> tables;  // upper-cased
};

ParsedSelect ParseSelect(const std::string& sql, const std::vector<Value>& params) {
  const sql::SelectStmt stmt = sql::Parse(sql);
  ParsedSelect parsed;
  parsed.key = sql::Fingerprint(stmt, params);
  parsed.tables.reserve(stmt.from.size());
  for (const sql::TableRef& ref : stmt.from) parsed.tables.push_back(ToUpper(ref.table));
  return parsed;
}

}  // namespace

ClientCache::ClientCache(std::string host, uint16_t port, ClientCacheConfig config)
    : host_(std::move(host)), port_(port), config_(std::move(config)) {
  if (config_.enable_subscription) {
    subscriber_ = std::thread([this] { SubscriptionLoop(); });
  }
}

ClientCache::~ClientCache() {
  stop_.store(true, std::memory_order_relaxed);
  if (subscriber_.joinable()) subscriber_.join();
  std::lock_guard<std::mutex> lock(origin_mutex_);
  origin_.Close();
}

cache::TimePoint ClientCache::Now() const {
  return config_.now ? config_.now() : std::chrono::steady_clock::now();
}

server::QcClient& ClientCache::OriginLocked() {
  if (!origin_.connected()) origin_.Connect(host_, port_);
  return origin_;
}

middleware::CachedQueryEngine::ExecuteResult ClientCache::Execute(
    const std::string& sql, const std::vector<Value>& params) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const ParsedSelect parsed = ParseSelect(sql, params);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(parsed.key);
    if (it != entries_.end()) {
      // While the push channel is healthy it is the freshness authority —
      // an entry still present has not been invalidated, serve it at any
      // age. Disconnected, fall back to the lease.
      const bool subscribed =
          config_.enable_subscription && healthy_.load(std::memory_order_relaxed);
      if (subscribed || Now() - it->second.fetched_at < config_.lease_ttl) {
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        local_hits_.fetch_add(1, std::memory_order_relaxed);
        return {it->second.result, true};
      }
      lease_expiries_.fetch_add(1, std::memory_order_relaxed);
      EraseLocked(it);
    }
  }

  origin_requests_.fetch_add(1, std::memory_order_relaxed);
  server::QcClient::SeqQueryResult reply;
  {
    std::lock_guard<std::mutex> lock(origin_mutex_);
    for (int attempt = 0;; ++attempt) {
      try {
        reply = OriginLocked().QuerySeq(sql, params);
        break;
      } catch (const server::NetError&) {
        origin_.Close();
        if (attempt > 0) throw;
      }
    }
  }
  auto result = std::make_shared<const sql::ResultSet>(std::move(reply.result));

  std::lock_guard<std::mutex> lock(mutex_);
  // Sequence-admission guard, client edition: if a pushed invalidation
  // with a higher sequence than this fill observed has already been
  // applied, the fill may predate it — serve it once but do not cache it
  // (docs/CLUSTER.md, "Stream-sequence admission").
  if (config_.enable_subscription &&
      push_seq_.load(std::memory_order_relaxed) > reply.observed_seq) {
    seq_admit_rejects_.fetch_add(1, std::memory_order_relaxed);
    return {std::move(result), false};
  }
  auto [it, inserted] = entries_.try_emplace(parsed.key);
  if (inserted) {
    it->second.lru = lru_.insert(lru_.begin(), parsed.key);
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  }
  it->second.result = result;
  it->second.tables = parsed.tables;
  it->second.fetched_at = Now();
  while (entries_.size() > config_.max_entries) {
    EraseLocked(entries_.find(lru_.back()));
  }
  return {std::move(result), false};
}

uint64_t ClientCache::Dml(const std::string& sql, const std::vector<Value>& params) {
  uint64_t affected = 0;
  {
    std::lock_guard<std::mutex> lock(origin_mutex_);
    for (int attempt = 0;; ++attempt) {
      try {
        affected = OriginLocked().Dml(sql, params);
        break;
      } catch (const server::NetError&) {
        origin_.Close();
        if (attempt > 0) throw;
      }
    }
  }
  // Read-your-writes: drop our own copies of the written table now rather
  // than when the pushed record loops back.
  try {
    const sql::AnyStatement stmt = sql::ParseStatement(sql);
    if (stmt.kind == sql::AnyStatement::Kind::kDml) {
      std::lock_guard<std::mutex> lock(mutex_);
      InvalidateTableLocked(ToUpper(stmt.dml.table), push_invalidations_);
      invalidated_cv_.notify_all();
    }
  } catch (const std::exception&) {
    // Unparseable locally (the server accepted it): the push will catch up.
  }
  return affected;
}

void ClientCache::Refresh(const std::string& sql, const std::vector<Value>& params) {
  const ParsedSelect parsed = ParseSelect(sql, params);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(parsed.key);
  if (it != entries_.end()) EraseLocked(it);
  invalidated_cv_.notify_all();
}

bool ClientCache::WaitForInvalidation(const std::string& sql, const std::vector<Value>& params,
                                      std::chrono::milliseconds timeout) {
  const ParsedSelect parsed = ParseSelect(sql, params);
  std::unique_lock<std::mutex> lock(mutex_);
  return invalidated_cv_.wait_for(lock, timeout, [this, &parsed] {
    return entries_.find(parsed.key) == entries_.end();
  });
}

ClientCacheStats ClientCache::stats() const {
  ClientCacheStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.local_hits = local_hits_.load(std::memory_order_relaxed);
  s.origin_requests = origin_requests_.load(std::memory_order_relaxed);
  s.push_invalidations = push_invalidations_.load(std::memory_order_relaxed);
  s.lease_expiries = lease_expiries_.load(std::memory_order_relaxed);
  s.seq_admit_rejects = seq_admit_rejects_.load(std::memory_order_relaxed);
  return s;
}

size_t ClientCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ClientCache::EraseLocked(std::unordered_map<std::string, Entry>::iterator it) {
  lru_.erase(it->second.lru);
  entries_.erase(it);
}

void ClientCache::InvalidateTableLocked(const std::string& upper_table,
                                        std::atomic<uint64_t>& counter) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::vector<std::string>& tables = it->second.tables;
    if (std::find(tables.begin(), tables.end(), upper_table) != tables.end()) {
      lru_.erase(it->second.lru);
      it = entries_.erase(it);
      counter.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
}

void ClientCache::ApplyPush(const server::CdcRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Fence first, then invalidate — a fill racing this push either sees the
  // raised push_seq_ at admission or its entry is erased here; both orders
  // keep the cache fresh (same argument as the cache node's applier).
  uint64_t seq = push_seq_.load(std::memory_order_relaxed);
  while (seq < record.seq &&
         !push_seq_.compare_exchange_weak(seq, record.seq, std::memory_order_relaxed)) {
  }
  InvalidateTableLocked(ToUpper(record.table), push_invalidations_);
  invalidated_cv_.notify_all();
}

void ClientCache::SubscriptionLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    try {
      server::QcClient stream;
      stream.Connect(host_, port_);
      const uint64_t current = stream.SubscribeCdc(last_seen_);
      if (current > last_seen_) {
        // Missed stream window: flush everything and fence admissions at
        // the server's current sequence.
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.clear();
        lru_.clear();
        uint64_t seq = push_seq_.load(std::memory_order_relaxed);
        while (seq < current &&
               !push_seq_.compare_exchange_weak(seq, current, std::memory_order_relaxed)) {
        }
        last_seen_ = current;
        invalidated_cv_.notify_all();
      }
      healthy_.store(true, std::memory_order_relaxed);
      while (!stop_.load(std::memory_order_relaxed)) {
        std::optional<server::CdcRecord> record =
            stream.ReadCdcEvent(static_cast<int>(config_.cdc_poll.count()));
        if (!record) continue;  // poll timeout; re-check stop_
        ApplyPush(*record);
        last_seen_ = record->seq;
      }
      return;
    } catch (const Error&) {
      healthy_.store(false, std::memory_order_relaxed);
      if (stop_.load(std::memory_order_relaxed)) return;
      std::this_thread::sleep_for(config_.reconnect_backoff);
    }
  }
}

}  // namespace qc::cluster
