#include "cluster/ring.h"

#include "common/error.h"

namespace qc::cluster {

HashRing::HashRing(size_t vnodes_per_node) : vnodes_(vnodes_per_node == 0 ? 1 : vnodes_per_node) {}

uint64_t HashRing::Hash(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  // Raw FNV-1a is too weak for ring placement: a trailing-byte change only
  // perturbs the low ~43 bits (one multiply, no avalanche), so keys that
  // differ in their last character land adjacent on the ring and pile onto
  // one owner. Finish with a 64-bit avalanche (murmur3 fmix64) so every
  // input bit flips every output bit with probability ~1/2.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

void HashRing::AddNode(const std::string& name) {
  if (!nodes_.insert(name).second) return;
  for (size_t i = 0; i < vnodes_; ++i) {
    const uint64_t point = Hash(name + "#" + std::to_string(i));
    auto [it, inserted] = ring_.emplace(point, name);
    if (!inserted && name < it->second) it->second = name;
  }
}

void HashRing::RemoveNode(const std::string& name) {
  if (nodes_.erase(name) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == name ? ring_.erase(it) : std::next(it);
  }
}

const std::string& HashRing::OwnerOf(std::string_view key) const {
  if (ring_.empty()) throw Error("hash ring has no nodes");
  const auto it = ring_.lower_bound(Hash(key));
  return it == ring_.end() ? ring_.begin()->second : it->second;
}

}  // namespace qc::cluster
