// Client-side caching tier (paper Fig. 1: "Although not shown in the
// figure, clients may also have caches") — rebuilt on the QCP/1 push
// channel (docs/CLUSTER.md, "Push-lease client caches").
//
// A client cache sits in a browser or fat client in front of one qcached
// node. Unlike the paper's client tier, which could only bound staleness
// with expiration times, this one SUBSCRIBEs to the node's CDC stream and
// drops local entries the moment the pushed invalidation for their tables
// arrives — no polling, staleness bounded by one CDC round-trip. The
// expiration time survives as the *lease*: while the subscription is
// healthy, entries are served regardless of age (the push channel is the
// freshness authority); if the subscription drops, entries are only served
// until their lease expires, and the client falls back to origin fetches
// until the stream reconnects. Fills use QUERY_SEQ, and the observed
// sequence gates admission exactly like a cache node's fills: a result
// that raced a newer pushed invalidation is not admitted.
//
// @thread_safety (accurate as of the CDC refactor): Execute/Dml/Refresh/
// WaitForInvalidation/stats may be called from any number of threads; the
// entry map is mutex-guarded, the origin connection is serialized on its
// own mutex, and the subscription thread owns a separate connection.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/gps_cache.h"
#include "middleware/query_engine.h"
#include "server/client.h"

namespace qc::cluster {

struct ClientCacheConfig {
  /// How long an entry may be served after its fetch once the push channel
  /// is down (the disconnection fallback). While subscribed, pushes — not
  /// the clock — decide freshness.
  cache::Duration lease_ttl = std::chrono::seconds(30);

  size_t max_entries = 1024;

  /// Injectable clock for lease expiry (tests); defaults to steady_clock.
  cache::TimeSource now;

  /// Subscribe to the node's CDC stream. Off = pure lease/TTL client (the
  /// paper's original client tier).
  bool enable_subscription = true;

  /// Subscription reconnect backoff and CDC read poll granularity.
  std::chrono::milliseconds reconnect_backoff{50};
  std::chrono::milliseconds cdc_poll{50};
};

struct ClientCacheStats {
  uint64_t requests = 0;
  uint64_t local_hits = 0;
  uint64_t origin_requests = 0;     // misses + lease-expired refetches
  uint64_t push_invalidations = 0;  // local entries dropped by pushed CDC records
  uint64_t lease_expiries = 0;      // entries dropped because the lease ran out
  uint64_t seq_admit_rejects = 0;   // fills refused: raced a newer push

  double LocalHitRatePercent() const {
    return requests == 0 ? 0.0
                         : 100.0 * static_cast<double>(local_hits) / static_cast<double>(requests);
  }
  double OriginOffloadPercent() const { return LocalHitRatePercent(); }
};

class ClientCache {
 public:
  /// Connects (lazily) to the qcached node at host:port. The subscription
  /// thread starts immediately when enabled.
  ClientCache(std::string host, uint16_t port, ClientCacheConfig config = {});

  /// Stops the subscription thread and closes both connections.
  ~ClientCache();

  ClientCache(const ClientCache&) = delete;
  ClientCache& operator=(const ClientCache&) = delete;

  /// Serve from the local cache, else QUERY_SEQ the origin and cache the
  /// result under the sequence-admission guard.
  middleware::CachedQueryEngine::ExecuteResult Execute(const std::string& sql,
                                                       const std::vector<Value>& params = {});

  /// Forward DML to the origin; local entries over the written table are
  /// dropped immediately (the pushed CDC record would do it a round-trip
  /// later anyway). Returns the origin's affected-row count.
  uint64_t Dml(const std::string& sql, const std::vector<Value>& params = {});

  /// Drop the local copy of one query (a client-initiated refresh).
  void Refresh(const std::string& sql, const std::vector<Value>& params = {});

  /// Block until the local copy of `sql` has been invalidated (by push,
  /// Dml, or Refresh) or was never cached. Returns false on timeout.
  /// Test/demo helper: proves the push arrived without polling Execute.
  bool WaitForInvalidation(const std::string& sql, const std::vector<Value>& params,
                           std::chrono::milliseconds timeout);

  /// True while the CDC subscription is connected (entries served on push
  /// authority rather than lease expiry).
  bool subscription_healthy() const { return healthy_.load(std::memory_order_relaxed); }

  uint64_t last_push_seq() const { return push_seq_.load(std::memory_order_relaxed); }

  ClientCacheStats stats() const;
  size_t entry_count() const;

 private:
  struct Entry {
    sql::ResultPtr result;
    std::vector<std::string> tables;  // upper-cased; matched against CDC records
    cache::TimePoint fetched_at;
    std::list<std::string>::iterator lru;
  };

  cache::TimePoint Now() const;
  void SubscriptionLoop();
  void ApplyPush(const server::CdcRecord& record);
  void EraseLocked(std::unordered_map<std::string, Entry>::iterator it);
  void InvalidateTableLocked(const std::string& upper_table, std::atomic<uint64_t>& counter);

  /// origin_mutex_ held. Lazily connected; callers Close()+retry once on a
  /// transport error.
  server::QcClient& OriginLocked();

  const std::string host_;
  const uint16_t port_;
  ClientCacheConfig config_;

  std::mutex origin_mutex_;
  server::QcClient origin_;

  mutable std::mutex mutex_;  // entries_ + lru_
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  std::condition_variable invalidated_cv_;

  std::thread subscriber_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> healthy_{false};
  std::atomic<uint64_t> push_seq_{0};  // highest pushed (or fenced) sequence
  uint64_t last_seen_ = 0;             // subscription thread only

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> local_hits_{0};
  std::atomic<uint64_t> origin_requests_{0};
  std::atomic<uint64_t> push_invalidations_{0};
  std::atomic<uint64_t> lease_expiries_{0};
  std::atomic<uint64_t> seq_admit_rejects_{0};
};

}  // namespace qc::cluster
