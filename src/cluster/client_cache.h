// Client-side caching tier (paper Fig. 1: "Although not shown in the
// figure, clients may also have caches").
//
// A client cache sits in a browser or fat client: it has no invalidation
// channel from the server, so it can only bound staleness with expiration
// times — precisely the GPS cache feature of §3. This tier composes a
// local GPS cache (TTL-driven) over any origin CachedQueryEngine; the
// interesting engineering trade is TTL vs. origin offload vs. staleness,
// which tests and the cluster bench quantify.
#pragma once

#include <memory>

#include "cache/gps_cache.h"
#include "middleware/query_engine.h"

namespace qc::cluster {

struct ClientCacheConfig {
  /// Every locally cached result expires after this long (client clocks
  /// tick via the injectable time source, like the GPS cache's).
  cache::Duration ttl = std::chrono::seconds(30);
  size_t max_entries = 1024;
  size_t memory_budget_bytes = 16 * 1024 * 1024;
  cache::TimeSource now;  // injectable for tests

  /// Verify local hits against the origin's database (stats only).
  bool verify_staleness = false;
};

struct ClientCacheStats {
  uint64_t requests = 0;
  uint64_t local_hits = 0;
  uint64_t stale_local_hits = 0;  // only counted when verify_staleness
  uint64_t origin_requests = 0;

  double LocalHitRatePercent() const {
    return requests == 0 ? 0.0
                         : 100.0 * static_cast<double>(local_hits) / static_cast<double>(requests);
  }
  double OriginOffloadPercent() const { return LocalHitRatePercent(); }
};

class ClientCache {
 public:
  /// `origin` must outlive the client cache.
  ClientCache(middleware::CachedQueryEngine& origin, ClientCacheConfig config);

  /// Serve from the local TTL cache, else fetch from the origin (which
  /// applies its own DUP-invalidated caching) and cache locally.
  middleware::CachedQueryEngine::ExecuteResult Execute(
      const std::shared_ptr<const sql::BoundQuery>& query, const std::vector<Value>& params = {});

  /// Drop the local copy of one query (a client-initiated refresh).
  void Refresh(const std::shared_ptr<const sql::BoundQuery>& query,
               const std::vector<Value>& params = {});

  ClientCacheStats stats() const { return stats_; }
  size_t entry_count() { return local_->entry_count(); }

 private:
  middleware::CachedQueryEngine& origin_;
  ClientCacheConfig config_;
  std::unique_ptr<cache::GpsCache> local_;
  ClientCacheStats stats_;
};

}  // namespace qc::cluster
