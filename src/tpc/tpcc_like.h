// A compact TPC-C-like OLTP workload (paper §5.1).
//
// TPC-C models order-entry: warehouses, districts, customers, stock,
// orders, with a transaction mix that is overwhelmingly update-bearing
// (New-Order 45 %, Payment 43 %, Order-Status 4 %, Delivery 4 %,
// Stock-Level 4 %). The paper observes that query caching — however smart
// the invalidation — buys little here, because nearly every transaction
// mutates the rows the few read-only queries depend on. This module
// reproduces that negative result; it is deliberately a scaled-down
// simulation, not a compliant TPC-C implementation (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "dup/policy.h"
#include "middleware/query_engine.h"
#include "storage/database.h"

namespace qc::tpc {

struct TpccConfig {
  int warehouses = 2;
  int districts_per_warehouse = 10;
  int customers_per_district = 60;
  int items = 500;
  uint64_t transactions = 4000;
  uint64_t seed = 1234;
};

struct MixResult {
  uint64_t transactions = 0;
  uint64_t queries = 0;      // read-only transactions
  uint64_t hits = 0;
  uint64_t updates = 0;      // update-bearing transactions
  uint64_t invalidations = 0;

  double HitRatePercent() const {
    return queries == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / static_cast<double>(queries);
  }
};

class TpccSimulation {
 public:
  TpccSimulation(const TpccConfig& config, dup::InvalidationPolicy policy);

  MixResult Run();

  middleware::CachedQueryEngine& engine() { return *engine_; }
  storage::Database& database() { return *db_; }

 private:
  void Load();
  void NewOrder(Rng& rng);
  void Payment(Rng& rng);
  bool OrderStatus(Rng& rng);   // returns cache_hit
  void Delivery(Rng& rng);
  bool StockLevel(Rng& rng);    // returns cache_hit

  TpccConfig config_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<middleware::CachedQueryEngine> engine_;
  storage::Table* customer_ = nullptr;
  storage::Table* stock_ = nullptr;
  storage::Table* orders_ = nullptr;
  storage::Table* district_ = nullptr;
  std::shared_ptr<const sql::BoundQuery> q_customer_by_last_;
  std::shared_ptr<const sql::BoundQuery> q_order_status_;
  std::shared_ptr<const sql::BoundQuery> q_stock_level_;
  int64_t next_order_id_ = 1;
};

}  // namespace qc::tpc
