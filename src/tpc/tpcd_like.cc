#include "tpc/tpcd_like.h"

namespace qc::tpc {

namespace {

const char* kReturnFlags[] = {"A", "N", "R"};
const char* kLineStatus[] = {"O", "F"};

}  // namespace

TpcdSimulation::TpcdSimulation(const TpcdConfig& config, dup::InvalidationPolicy policy)
    : config_(config), db_(std::make_unique<storage::Database>()) {
  Load();
  middleware::CachedQueryEngine::Options options;
  options.policy = policy;
  // Warehouse queries are aggregates over the fact data; the paper-mode
  // dependency set (WHERE + GROUP BY) mirrors its §5 experiments.
  options.extraction = dup::ExtractionOptions::PaperFidelity();
  engine_ = std::make_unique<middleware::CachedQueryEngine>(*db_, options);

  // TPC-D-flavored aggregate queries (Q1-like pricing summary slices, a
  // discount-revenue probe, shipping backlogs).
  queries_ = {
      engine_->Prepare("SELECT L_RETURNFLAG, L_LINESTATUS, COUNT(*) FROM LINEITEM "
                       "WHERE L_SHIPDATE <= 19981201 GROUP BY L_RETURNFLAG, L_LINESTATUS"),
      engine_->Prepare("SELECT SUM(L_EXTENDEDPRICE) FROM LINEITEM "
                       "WHERE L_DISCOUNT BETWEEN 5 AND 7 AND L_QUANTITY < 24"),
      engine_->Prepare("SELECT COUNT(*) FROM LINEITEM WHERE L_SHIPDATE BETWEEN 19970101 AND "
                       "19971231 AND L_RETURNFLAG = 'R'"),
      engine_->Prepare("SELECT SUM(L_QUANTITY) FROM LINEITEM WHERE L_LINESTATUS = 'O'"),
      engine_->Prepare("SELECT L_RETURNFLAG, SUM(L_EXTENDEDPRICE) FROM LINEITEM "
                       "WHERE L_QUANTITY >= 30 GROUP BY L_RETURNFLAG"),
  };
}

void TpcdSimulation::Load() {
  lineitem_ = &db_->CreateTable(
      "LINEITEM", storage::Schema({{"L_ORDERKEY", ValueType::kInt, false},
                                   {"L_QUANTITY", ValueType::kInt, false},
                                   {"L_EXTENDEDPRICE", ValueType::kInt, false},
                                   {"L_DISCOUNT", ValueType::kInt, false},
                                   {"L_SHIPDATE", ValueType::kInt, false},
                                   {"L_RETURNFLAG", ValueType::kString, false},
                                   {"L_LINESTATUS", ValueType::kString, false}}));
  Rng rng(config_.seed);
  InsertBatch(rng, config_.lineitems);
  lineitem_->CreateOrderedIndex(lineitem_->schema().Require("L_SHIPDATE"));
  lineitem_->CreateHashIndex(lineitem_->schema().Require("L_RETURNFLAG"));
  lineitem_->CreateOrderedIndex(lineitem_->schema().Require("L_QUANTITY"));
}

void TpcdSimulation::InsertBatch(Rng& rng, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    lineitem_->Insert({Value(rng.Uniform(1, 1'000'000)), Value(rng.Uniform(1, 50)),
                       Value(rng.Uniform(100, 100'000)), Value(rng.Uniform(0, 10)),
                       Value(rng.Uniform(19'92'01'01, 19'98'12'01)),
                       Value(kReturnFlags[rng.Uniform(0, 2)]), Value(kLineStatus[rng.Uniform(0, 1)])});
  }
}

MixResult TpcdSimulation::Run() {
  Rng rng(config_.seed + 1);
  MixResult result;
  const dup::DupStats before = engine_->dup_stats();
  for (uint64_t t = 0; t < config_.transactions; ++t) {
    ++result.transactions;
    if (config_.refresh_interval > 0 && t > 0 && t % config_.refresh_interval == 0) {
      InsertBatch(rng, config_.refresh_batch);
      ++result.updates;
      continue;
    }
    const auto& query = queries_[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(queries_.size()) - 1))];
    auto outcome = engine_->Execute(query);
    ++result.queries;
    if (outcome.cache_hit) ++result.hits;
  }
  result.invalidations = engine_->dup_stats().invalidations - before.invalidations;
  return result;
}

}  // namespace qc::tpc
