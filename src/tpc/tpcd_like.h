// A compact TPC-D-like decision-support workload (paper §5.1).
//
// TPC-D models data warehousing: large scan/aggregate queries over fact
// data that is refreshed "periodically in large batches or not at all".
// The paper's observation: with batch refresh, a sophisticated
// invalidation strategy buys nothing — every batch touches enough of the
// fact table that all cached aggregates die under any DUP policy, and
// between batches nothing invalidates at all. This module reproduces that
// insensitivity.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "dup/policy.h"
#include "middleware/query_engine.h"
#include "storage/database.h"
#include "tpc/tpcc_like.h"  // MixResult

namespace qc::tpc {

struct TpcdConfig {
  uint64_t lineitems = 20'000;
  uint64_t transactions = 2000;
  /// Every `refresh_interval` transactions, insert `refresh_batch` new
  /// fact rows (the periodic bulk load).
  uint64_t refresh_interval = 250;
  uint64_t refresh_batch = 200;
  uint64_t seed = 77;
};

class TpcdSimulation {
 public:
  TpcdSimulation(const TpcdConfig& config, dup::InvalidationPolicy policy);

  MixResult Run();

  middleware::CachedQueryEngine& engine() { return *engine_; }

 private:
  void Load();
  void InsertBatch(Rng& rng, uint64_t count);

  TpcdConfig config_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<middleware::CachedQueryEngine> engine_;
  storage::Table* lineitem_ = nullptr;
  std::vector<std::shared_ptr<const sql::BoundQuery>> queries_;
};

}  // namespace qc::tpc
