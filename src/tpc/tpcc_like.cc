#include "tpc/tpcc_like.h"

namespace qc::tpc {

namespace {

const char* kLastNames[] = {"BAR",   "OUGHT", "ABLE",  "PRI",   "PRES",
                            "ESE",   "ANTI",  "CALLY", "ATION", "EING"};

}  // namespace

TpccSimulation::TpccSimulation(const TpccConfig& config, dup::InvalidationPolicy policy)
    : config_(config), db_(std::make_unique<storage::Database>()) {
  Load();
  middleware::CachedQueryEngine::Options options;
  options.policy = policy;
  engine_ = std::make_unique<middleware::CachedQueryEngine>(*db_, options);
  q_customer_by_last_ = engine_->Prepare(
      "SELECT C_ID, C_BALANCE, C_CREDIT FROM CUSTOMER "
      "WHERE C_W_ID = $1 AND C_D_ID = $2 AND C_LAST = $3");
  q_order_status_ = engine_->Prepare(
      "SELECT O_ID, O_CARRIER_ID, O_OL_CNT FROM ORDERS "
      "WHERE O_W_ID = $1 AND O_D_ID = $2 AND O_C_ID = $3");
  q_stock_level_ = engine_->Prepare(
      "SELECT COUNT(*) FROM STOCK WHERE S_W_ID = $1 AND S_QUANTITY < $2");
}

void TpccSimulation::Load() {
  using storage::ColumnDef;
  using storage::Schema;

  district_ = &db_->CreateTable(
      "DISTRICT", Schema({{"D_W_ID", ValueType::kInt, false},
                          {"D_ID", ValueType::kInt, false},
                          {"D_NEXT_O_ID", ValueType::kInt, false},
                          {"D_YTD", ValueType::kInt, false}}));
  customer_ = &db_->CreateTable(
      "CUSTOMER", Schema({{"C_W_ID", ValueType::kInt, false},
                          {"C_D_ID", ValueType::kInt, false},
                          {"C_ID", ValueType::kInt, false},
                          {"C_LAST", ValueType::kString, false},
                          {"C_BALANCE", ValueType::kInt, false},
                          {"C_PAYMENT_CNT", ValueType::kInt, false},
                          {"C_CREDIT", ValueType::kString, false}}));
  stock_ = &db_->CreateTable(
      "STOCK", Schema({{"S_W_ID", ValueType::kInt, false},
                       {"S_I_ID", ValueType::kInt, false},
                       {"S_QUANTITY", ValueType::kInt, false},
                       {"S_YTD", ValueType::kInt, false},
                       {"S_ORDER_CNT", ValueType::kInt, false}}));
  orders_ = &db_->CreateTable(
      "ORDERS", Schema({{"O_W_ID", ValueType::kInt, false},
                        {"O_D_ID", ValueType::kInt, false},
                        {"O_ID", ValueType::kInt, false},
                        {"O_C_ID", ValueType::kInt, false},
                        {"O_CARRIER_ID", ValueType::kInt, true},
                        {"O_OL_CNT", ValueType::kInt, false}}));

  Rng rng(config_.seed);
  for (int w = 1; w <= config_.warehouses; ++w) {
    for (int d = 1; d <= config_.districts_per_warehouse; ++d) {
      district_->Insert({Value(w), Value(d), Value(int64_t{1}), Value(int64_t{0})});
      for (int c = 1; c <= config_.customers_per_district; ++c) {
        customer_->Insert({Value(w), Value(d), Value(c),
                           Value(std::string(kLastNames[rng.Uniform(0, 9)]) +
                                 kLastNames[rng.Uniform(0, 9)]),
                           Value(rng.Uniform(-500, 5000)), Value(int64_t{0}),
                           Value(rng.Chance(0.1) ? "BC" : "GC")});
      }
    }
    for (int i = 1; i <= config_.items; ++i) {
      stock_->Insert({Value(w), Value(i), Value(rng.Uniform(10, 100)), Value(int64_t{0}),
                      Value(int64_t{0})});
    }
  }
  customer_->CreateHashIndex(customer_->schema().Require("C_LAST"));
  customer_->CreateHashIndex(customer_->schema().Require("C_W_ID"));
  customer_->CreateHashIndex(customer_->schema().Require("C_ID"));
  stock_->CreateHashIndex(stock_->schema().Require("S_W_ID"));
  stock_->CreateOrderedIndex(stock_->schema().Require("S_QUANTITY"));
  orders_->CreateHashIndex(orders_->schema().Require("O_C_ID"));
  orders_->CreateHashIndex(orders_->schema().Require("O_ID"));
  district_->CreateHashIndex(district_->schema().Require("D_ID"));
}

void TpccSimulation::NewOrder(Rng& rng) {
  const int64_t w = rng.Uniform(1, config_.warehouses);
  const int64_t d = rng.Uniform(1, config_.districts_per_warehouse);
  const int64_t c = rng.Uniform(1, config_.customers_per_district);

  // Bump the district's order counter.
  for (storage::RowId row : district_->LookupEqual(district_->schema().Require("D_ID"), Value(d))) {
    if (district_->Get(row, 0).as_int() != w) continue;
    district_->Update(row, district_->schema().Require("D_NEXT_O_ID"),
                      Value(district_->Get(row, 2).as_int() + 1));
    break;
  }

  orders_->Insert({Value(w), Value(d), Value(next_order_id_++), Value(c), Value::Null(),
                   Value(rng.Uniform(5, 15))});

  // 5 order lines: decrement stock.
  const uint32_t qty_col = stock_->schema().Require("S_QUANTITY");
  const uint32_t cnt_col = stock_->schema().Require("S_ORDER_CNT");
  for (int line = 0; line < 5; ++line) {
    const int64_t item = rng.Uniform(1, config_.items);
    for (storage::RowId row : stock_->LookupEqual(stock_->schema().Require("S_W_ID"), Value(w))) {
      if (stock_->Get(row, 1).as_int() != item) continue;
      int64_t qty = stock_->Get(row, qty_col).as_int() - rng.Uniform(1, 10);
      if (qty < 10) qty += 91;  // TPC-C restock rule
      stock_->Update(row, {{qty_col, Value(qty)},
                           {cnt_col, Value(stock_->Get(row, cnt_col).as_int() + 1)}});
      break;
    }
  }
}

void TpccSimulation::Payment(Rng& rng) {
  const int64_t w = rng.Uniform(1, config_.warehouses);
  const int64_t d = rng.Uniform(1, config_.districts_per_warehouse);
  const int64_t c = rng.Uniform(1, config_.customers_per_district);
  const int64_t amount = rng.Uniform(1, 500);

  const uint32_t bal_col = customer_->schema().Require("C_BALANCE");
  const uint32_t cnt_col = customer_->schema().Require("C_PAYMENT_CNT");
  for (storage::RowId row : customer_->LookupEqual(customer_->schema().Require("C_ID"), Value(c))) {
    if (customer_->Get(row, 0).as_int() != w || customer_->Get(row, 1).as_int() != d) continue;
    customer_->Update(row, {{bal_col, Value(customer_->Get(row, bal_col).as_int() - amount)},
                            {cnt_col, Value(customer_->Get(row, cnt_col).as_int() + 1)}});
    break;
  }
}

bool TpccSimulation::OrderStatus(Rng& rng) {
  const int64_t w = rng.Uniform(1, config_.warehouses);
  const int64_t d = rng.Uniform(1, config_.districts_per_warehouse);
  // Half by customer last name (two cached queries), half by id.
  const std::string last =
      std::string(kLastNames[rng.Uniform(0, 9)]) + kLastNames[rng.Uniform(0, 9)];
  auto by_last = engine_->Execute(q_customer_by_last_, {Value(w), Value(d), Value(last)});
  const int64_t c = by_last.result->empty() ? rng.Uniform(1, config_.customers_per_district)
                                            : by_last.result->rows().front()[0].as_int();
  auto status = engine_->Execute(q_order_status_, {Value(w), Value(d), Value(c)});
  return by_last.cache_hit && status.cache_hit;
}

void TpccSimulation::Delivery(Rng& rng) {
  // Assign a carrier to up to 10 undelivered orders.
  const uint32_t carrier_col = orders_->schema().Require("O_CARRIER_ID");
  int updated = 0;
  orders_->ForEachRow([&](storage::RowId row) {
    if (updated >= 10) return;
    if (!orders_->Get(row, carrier_col).is_null()) return;
    orders_->Update(row, carrier_col, Value(rng.Uniform(1, 10)));
    ++updated;
  });
}

bool TpccSimulation::StockLevel(Rng& rng) {
  const int64_t w = rng.Uniform(1, config_.warehouses);
  const int64_t threshold = rng.Uniform(10, 20);
  return engine_->Execute(q_stock_level_, {Value(w), Value(threshold)}).cache_hit;
}

MixResult TpccSimulation::Run() {
  Rng rng(config_.seed + 1);
  MixResult result;
  const dup::DupStats before = engine_->dup_stats();
  for (uint64_t t = 0; t < config_.transactions; ++t) {
    ++result.transactions;
    const double dice = rng.UniformReal();
    if (dice < 0.45) {
      NewOrder(rng);
      ++result.updates;
    } else if (dice < 0.88) {
      Payment(rng);
      ++result.updates;
    } else if (dice < 0.92) {
      ++result.queries;
      if (OrderStatus(rng)) ++result.hits;
    } else if (dice < 0.96) {
      Delivery(rng);
      ++result.updates;
    } else {
      ++result.queries;
      if (StockLevel(rng)) ++result.hits;
    }
  }
  result.invalidations = engine_->dup_stats().invalidations - before.invalidations;
  return result;
}

}  // namespace qc::tpc
