// Disk-backed store: the GPS cache's secondary storage level (§3: "a
// common mode of operation is to use disk as secondary storage for cached
// data which cannot fit in memory").
//
// Layout: one self-describing spill file per entry (cache/spill_format.h)
// under a spool directory, with an in-memory index (key → file, size, LRU
// position). Two modes:
//
//   * ephemeral (the default): the spool is a spill area — the directory
//     is emptied on construction and on destruction, matching the paper's
//     cache where logs, not cache contents, provide durability.
//   * persistent (`recover = true`): the directory is scanned on
//     construction. Every file that decodes cleanly and passes its CRC
//     rebuilds an index entry (with its durable tag and absolute
//     expiration handed back through `recovered()`); anything corrupt is
//     quarantined — renamed to `<file>.quarantine` and counted — never
//     thrown. The destructor leaves files in place so the cache survives
//     the next restart.
//
// Hot-path I/O failures (unreadable file, short read, CRC mismatch,
// failed write) never throw: the operation degrades to a miss / rejected
// put, the offending file is quarantined or removed, and io_errors() is
// incremented. Only constructor-time spool-directory creation throws.
//
// @thread_safety Not internally synchronized. Each GpsCache shard owns one
// DiskStore (its own spool subdirectory); every mutation — Put, Read (it
// splices the LRU list and may quarantine), Erase, Clear — runs only under
// that shard's *exclusive* lock. The const observers (Contains,
// byte_count, io_errors, quarantined, recovered) touch nothing but plain
// members, so the GpsCache may call them under the shard's *shared* lock,
// concurrently with each other (docs/CONCURRENCY.md). Standalone users
// must provide their own locking. Two DiskStores must never share a
// directory.
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/spill_format.h"

namespace qc::cache {

class DiskStore {
 public:
  /// Creates the spool directory (throws CacheError on failure). With
  /// `recover` false the directory is emptied — pure spill-area semantics;
  /// with `recover` true existing spill files are scanned, verified and
  /// re-indexed, and the store becomes persistent (files outlive *this).
  DiskStore(std::filesystem::path directory, size_t max_bytes, bool recover = false);
  ~DiskStore();

  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;

  /// Entry metadata persisted alongside the payload.
  struct SpillMeta {
    int64_t expires_at_micros = kNoExpiry;  // wall-clock epoch micros
    std::string_view durable_tag;           // opaque higher-layer annotation
  };

  /// Write or replace the serialized entry. Evicted victim keys (LRU,
  /// budget-driven) are appended to `evicted`. Returns false if the record
  /// alone exceeds the byte budget or the write fails (counted in
  /// io_errors(), never thrown).
  bool Put(const std::string& key, std::string_view payload, const SpillMeta& meta,
           std::vector<std::string>* evicted);
  bool Put(const std::string& key, std::string_view payload, std::vector<std::string>* evicted) {
    return Put(key, payload, SpillMeta{}, evicted);
  }

  enum class ReadStatus {
    kHit,      // payload produced
    kMiss,     // key not in the index
    kCorrupt,  // file unreadable or failed verification; entry quarantined
  };

  /// Read an entry's payload; refreshes LRU position on a hit. A corrupt
  /// file is quarantined, dropped from the index and reported as kCorrupt
  /// (the caller serves a miss) — never an exception.
  ReadStatus Read(const std::string& key, std::string* payload);

  /// Convenience wrapper: kHit → payload, anything else → nullopt.
  std::optional<std::string> Get(const std::string& key);

  /// Rename `key`'s file to `<file>.quarantine` and drop it from the
  /// index. Used by owners whose post-CRC validation (deserialization)
  /// fails; counted like any other corruption. No-op if absent.
  void QuarantineEntry(const std::string& key);

  bool Contains(const std::string& key) const { return index_.count(key) > 0; }
  bool Erase(const std::string& key);
  void Clear();

  size_t entry_count() const { return index_.size(); }
  size_t byte_count() const { return bytes_; }

  /// Hot-path I/O failures: corrupt reads, failed writes, failed
  /// quarantine renames. Monotonic over the store's lifetime.
  uint64_t io_errors() const { return io_errors_; }
  /// Spill files quarantined (startup scan + hot path).
  uint64_t quarantined() const { return quarantined_; }

  /// One entry restored by the recovery scan. Expiration has NOT been
  /// applied: the owner decides staleness against its own clock (and calls
  /// Erase for entries it drops).
  struct Recovered {
    std::string key;
    std::string durable_tag;
    int64_t expires_at_micros = kNoExpiry;
    size_t payload_bytes = 0;
  };

  /// Entries found by the constructor's recovery scan, oldest spill first
  /// (the recovered LRU order). Empty unless constructed with recover.
  const std::vector<Recovered>& recovered() const { return recovered_; }

 private:
  struct Entry {
    std::filesystem::path file;
    size_t bytes = 0;  // full record size on disk
    std::list<std::string>::iterator lru_pos;
  };

  std::filesystem::path FileFor(const std::string& key);
  void RecoverFromDirectory();
  void Quarantine(std::unordered_map<std::string, Entry>::iterator it);
  void QuarantineFile(const std::filesystem::path& file);
  void EvictIfNeeded(std::vector<std::string>* evicted);
  void RemoveEntry(std::unordered_map<std::string, Entry>::iterator it);

  std::filesystem::path dir_;
  size_t max_bytes_;
  bool persistent_ = false;
  size_t bytes_ = 0;
  uint64_t seq_ = 0;  // uniquifies file names; recovery resumes past the max seen
  uint64_t io_errors_ = 0;
  uint64_t quarantined_ = 0;
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> index_;
  std::vector<Recovered> recovered_;
};

}  // namespace qc::cache
