// Disk-backed store: the GPS cache's secondary storage level (§3: "a
// common mode of operation is to use disk as secondary storage for cached
// data which cannot fit in memory").
//
// Layout: one file per entry under a spool directory, with an in-memory
// index (key → file, size, LRU position). The index is rebuilt empty on
// construction — the disk store is a spill area, not a durable store,
// matching the paper's cache (logs, not the cache contents, provide
// durability).
//
// @thread_safety Not internally synchronized. Each GpsCache shard owns one
// DiskStore (its own spool subdirectory) and accesses it only under that
// shard's mutex (docs/CONCURRENCY.md); standalone users must provide their
// own locking. Two DiskStores must never share a directory.
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace qc::cache {

class DiskStore {
 public:
  /// Creates (and empties) the spool directory. Throws CacheError on I/O
  /// failure.
  DiskStore(std::filesystem::path directory, size_t max_bytes);
  ~DiskStore();

  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;

  /// Write or replace the serialized entry. Evicted victim keys (LRU,
  /// budget-driven) are appended to `evicted`. Returns false if the entry
  /// alone exceeds the byte budget.
  bool Put(const std::string& key, std::string_view bytes, std::vector<std::string>* evicted);

  /// Read an entry; refreshes LRU position. nullopt if absent.
  std::optional<std::string> Get(const std::string& key);

  bool Contains(const std::string& key) const { return index_.count(key) > 0; }
  bool Erase(const std::string& key);
  void Clear();

  size_t entry_count() const { return index_.size(); }
  size_t byte_count() const { return bytes_; }

 private:
  struct Entry {
    std::filesystem::path file;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  std::filesystem::path FileFor(const std::string& key);
  void EvictIfNeeded(std::vector<std::string>* evicted);
  void RemoveEntry(std::unordered_map<std::string, Entry>::iterator it);

  std::filesystem::path dir_;
  size_t max_bytes_;
  size_t bytes_ = 0;
  uint64_t seq_ = 0;  // uniquifies file names
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> index_;
};

}  // namespace qc::cache
