// In-memory store: one of the GPS cache's two storage levels. Supports two
// replacement policies:
//
//   * kLru — exact LRU: an intrusive list is spliced on every Get, so
//     lookups mutate shared state and the owner must hold its exclusive
//     lock even for reads.
//   * kClock — second-chance (CLOCK): entries live in a ring; a Get only
//     sets an atomic reference bit, so concurrent lookups need no
//     exclusive lock. Eviction sweeps a clock hand over the ring (under
//     the owner's exclusive lock), clearing reference bits and victimizing
//     the first entry found unreferenced — approximate LRU at a fraction
//     of the read-path cost (cf. MemC3 / CLOCK-Pro).
//
// @thread_safety Not internally synchronized, with one deliberate
// exception: in kClock mode, Get/Peek/Contains only read the entry table
// and store the atomic reference bit, so any number of threads may call
// them concurrently *with each other* (the GpsCache does so under a shared
// shard lock). Every mutation — Put, Erase, Clear, and therefore every
// eviction sweep — still requires external exclusive locking against all
// other calls (docs/CONCURRENCY.md). In kLru mode every method, including
// Get, requires the exclusive lock.
#pragma once

#include <atomic>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/value.h"

namespace qc::cache {

/// Replacement policy for the memory tier (and the GPS cache's read-path
/// locking discipline — see GpsCacheConfig::eviction).
enum class EvictionPolicy {
  kLru,    // exact LRU; reads splice a list and need the exclusive lock
  kClock,  // second-chance ring; reads set an atomic bit under a shared lock
};

const char* EvictionPolicyName(EvictionPolicy policy);

class MemoryStore {
 public:
  struct Evicted {
    std::string key;
    CacheValuePtr value;
  };

  MemoryStore(size_t max_bytes, size_t max_entries,
              EvictionPolicy policy = EvictionPolicy::kLru)
      : policy_(policy), max_bytes_(max_bytes), max_entries_(max_entries) {}

  /// Insert or replace. Victims evicted to satisfy the budgets are
  /// appended to `evicted` (never the key just inserted). Returns false —
  /// without storing — if the object alone exceeds the byte budget.
  bool Put(const std::string& key, CacheValuePtr value, std::vector<Evicted>* evicted);

  /// Lookup. kLru: refreshes the LRU position (mutates the list). kClock:
  /// sets the entry's reference bit (a relaxed atomic store — safe under a
  /// shared lock). Null if absent.
  CacheValuePtr Get(const std::string& key);

  /// Lookup without any recency side effects.
  CacheValuePtr Peek(const std::string& key) const;

  bool Contains(const std::string& key) const { return entries_.count(key) > 0; }
  bool Erase(const std::string& key);
  void Clear();

  size_t entry_count() const { return entries_.size(); }
  size_t byte_count() const { return bytes_; }
  EvictionPolicy policy() const { return policy_; }

  /// Keys from most- to least-recently used (diagnostics and tests).
  /// kClock: approximate — currently-referenced entries first, each group
  /// in ring order starting at the clock hand (the hand's next victims
  /// come last within their group).
  std::vector<std::string> KeysByRecency() const;

 private:
  struct Entry {
    CacheValuePtr value;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_pos;  // kLru only
    size_t slot = 0;                           // kClock: index into ring_
    std::atomic<uint32_t> referenced{0};       // kClock: second-chance bit
  };
  using EntryMap = std::unordered_map<std::string, Entry>;

  bool OverBudget() const {
    return bytes_ > max_bytes_ || entries_.size() > max_entries_;
  }
  void EvictLru(std::vector<Evicted>* evicted);
  void EvictClock(const std::string& protect, std::vector<Evicted>* evicted);
  size_t AllocSlot(const std::string& key);
  void RemoveClockEntry(EntryMap::iterator it);

  EvictionPolicy policy_;
  size_t max_bytes_;
  size_t max_entries_;
  size_t bytes_ = 0;
  std::list<std::string> lru_;  // kLru: front = most recent
  EntryMap entries_;
  // kClock: ring of slots the hand sweeps. A slot is live iff its key is
  // in entries_ with a matching slot index; Erase leaves a stale slot that
  // the free list recycles (the ring never shrinks below peak occupancy,
  // but sweeps skip stale slots in O(1) each).
  std::vector<std::string> ring_;
  std::vector<size_t> free_slots_;
  size_t hand_ = 0;
};

}  // namespace qc::cache
