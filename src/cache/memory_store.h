// In-memory LRU store: one of the GPS cache's two storage levels.
//
// @thread_safety Not internally synchronized. Each GpsCache shard owns one
// MemoryStore and accesses it only under that shard's mutex
// (docs/CONCURRENCY.md); standalone users must provide their own locking.
#pragma once

#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/value.h"

namespace qc::cache {

class MemoryStore {
 public:
  struct Evicted {
    std::string key;
    CacheValuePtr value;
  };

  MemoryStore(size_t max_bytes, size_t max_entries)
      : max_bytes_(max_bytes), max_entries_(max_entries) {}

  /// Insert or replace. Victims evicted to satisfy the budgets are
  /// appended to `evicted` (never the key just inserted). Returns false —
  /// without storing — if the object alone exceeds the byte budget.
  bool Put(const std::string& key, CacheValuePtr value, std::vector<Evicted>* evicted);

  /// Lookup; refreshes LRU position. Null if absent.
  CacheValuePtr Get(const std::string& key);

  /// Lookup without LRU side effects.
  CacheValuePtr Peek(const std::string& key) const;

  bool Contains(const std::string& key) const { return entries_.count(key) > 0; }
  bool Erase(const std::string& key);
  void Clear();

  size_t entry_count() const { return entries_.size(); }
  size_t byte_count() const { return bytes_; }

  /// Keys from most- to least-recently used (diagnostics and tests).
  std::vector<std::string> KeysByRecency() const;

 private:
  struct Entry {
    CacheValuePtr value;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  void EvictIfNeeded(std::vector<Evicted>* evicted);

  size_t max_bytes_;
  size_t max_entries_;
  size_t bytes_ = 0;
  std::list<std::string> lru_;  // front = most recent
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace qc::cache
