#include "cache/gps_cache.h"

#include <algorithm>
#include <mutex>

#include "common/error.h"

namespace qc::cache {

const char* RemovalCauseName(RemovalCause cause) {
  switch (cause) {
    case RemovalCause::kInvalidated: return "invalidated";
    case RemovalCause::kEvicted: return "evicted";
    case RemovalCause::kExpired: return "expired";
    case RemovalCause::kCleared: return "cleared";
    case RemovalCause::kReplaced: return "replaced";
  }
  return "?";
}

GpsCache::GpsCache(GpsCacheConfig config) : config_(std::move(config)) {
  now_ = config_.now ? config_.now : [] { return std::chrono::steady_clock::now(); };
  wall_now_ = config_.wall_now_micros ? config_.wall_now_micros : [] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  };

  if (!config_.log_path.empty()) {
    log_ = std::make_unique<TransactionLog>(config_.log_path, config_.log_policy,
                                            config_.log_buffer_bytes);
  }

  const size_t n = std::max<size_t>(1, config_.shards);
  if (config_.mode != CacheMode::kMemory) {
    if (config_.disk_directory.empty()) {
      throw CacheError("disk/hybrid mode requires disk_directory");
    }
    if (!config_.deserializer) {
      throw CacheError("disk/hybrid mode requires a deserializer");
    }
  }

  // Budgets are totals; each shard gets an even split.
  const size_t mem_bytes = config_.memory_budget_bytes / n;
  const size_t mem_entries =
      config_.memory_max_entries == SIZE_MAX ? SIZE_MAX : config_.memory_max_entries / n;
  const size_t disk_bytes = config_.disk_budget_bytes / n;

  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    if (config_.mode != CacheMode::kDisk) {
      shard->memory = std::make_unique<MemoryStore>(mem_bytes, mem_entries, config_.eviction);
    }
    if (config_.mode != CacheMode::kMemory) {
      // One spool subdirectory per shard (the single-shard layout is kept
      // flat for compatibility with existing spools/tests).
      const std::string dir = n == 1 ? config_.disk_directory
                                     : config_.disk_directory + "/shard" + std::to_string(i);
      shard->disk = std::make_unique<DiskStore>(dir, disk_bytes, config_.recover_on_open);
    }
    shards_.push_back(std::move(shard));
  }
  if (config_.recover_on_open) {
    for (auto& shard : shards_) {
      if (shard->disk) AdoptRecovered(*shard);
    }
  }
}

GpsCache::Shard& GpsCache::ShardFor(const std::string& key) {
  if (shards_.size() == 1) return *shards_[0];
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

int64_t GpsCache::WallExpiry(int64_t deadline_ns) const {
  if (deadline_ns == kNoDeadlineNs) return kNoExpiry;
  const int64_t remaining_micros = (deadline_ns - NowNs()) / 1000;
  return WallNowMicros() + remaining_micros;
}

void GpsCache::AdoptRecovered(Shard& shard) {
  const int64_t wall_now = WallNowMicros();
  for (const DiskStore::Recovered& rec : shard.disk->recovered()) {
    // A key can only be served from the shard it hashes to; a spool
    // reopened with a different shard count strands entries in the wrong
    // subdirectory — discard those rather than leak them.
    if (&ShardFor(rec.key) != &shard) {
      shard.disk->Erase(rec.key);
      continue;
    }
    if (rec.expires_at_micros != kNoExpiry && rec.expires_at_micros <= wall_now) {
      shard.disk->Erase(rec.key);
      ++shard.stats.expirations;
      continue;
    }
    Meta& meta = shard.meta[rec.key];
    meta.generation = ++shard.generation_counter;
    meta.durable_tag = rec.durable_tag;
    if (rec.expires_at_micros != kNoExpiry) {
      const TimePoint deadline =
          now_() + std::chrono::microseconds(rec.expires_at_micros - wall_now);
      meta.expires_at_ns.store(ToNs(deadline), std::memory_order_relaxed);
      shard.expiry_heap.push({deadline, rec.key, meta.generation});
    }
    ++shard.stats.recovered;
    recovered_entries_.push_back({rec.key, rec.durable_tag});
  }
  Log("recover", "*",
      "restored=" + std::to_string(shard.stats.recovered) +
          " quarantined=" + std::to_string(shard.disk->quarantined()));
}

void GpsCache::Log(std::string_view op, std::string_view key, std::string_view detail) {
  if (log_) log_->Append(op, key, detail);
}

bool GpsCache::Put(const std::string& key, CacheValuePtr value, std::optional<Duration> ttl) {
  return Put(key, std::move(value), ttl, AdmitGuard());
}

bool GpsCache::Put(const std::string& key, CacheValuePtr value, std::optional<Duration> ttl,
                   const AdmitGuard& admit, std::string durable_tag) {
  if (!admit) {
    return Put(key, std::move(value), ttl, AdmitDecider(), std::move(durable_tag));
  }
  return Put(
      key, std::move(value), ttl,
      AdmitDecider([&admit] {
        return admit() ? AdmitDecision::kAdmit : AdmitDecision::kRejectStale;
      }),
      std::move(durable_tag));
}

bool GpsCache::Put(const std::string& key, CacheValuePtr value, std::optional<Duration> ttl,
                   const AdmitDecider& admit, std::string durable_tag) {
  Shard& shard = ShardFor(key);
  std::vector<std::pair<std::string, RemovalCause>> removed;
  bool stored = false;
  bool replaced = false;
  bool admitted = true;
  AdmitDecision decision = AdmitDecision::kAdmit;
  {
    std::lock_guard<std::shared_mutex> lock(shard.mutex);
    ExpireDueLocked(shard, removed);

    // Admission check under the exclusive shard lock: the caller's
    // validation (e.g. the DUP epoch snapshot and the CDC sequence gate)
    // and the store are one atomic step relative to Invalidate() on the
    // same key, and no shared-lock reader can observe the entry until this
    // section completes.
    if (admit && (decision = admit()) != AdmitDecision::kAdmit) {
      admitted = false;
      ++shard.stats.admit_rejects;
      if (decision == AdmitDecision::kRejectSequence) ++shard.stats.seq_admit_rejects;
    } else {
      auto meta_it = shard.meta.find(key);
      const bool replacing = meta_it != shard.meta.end();

      if (shard.memory) {
        std::vector<MemoryStore::Evicted> evicted;
        stored = shard.memory->Put(key, value, &evicted);
        if (stored && config_.mode == CacheMode::kHybrid) {
          // The memory copy is authoritative now; a stale disk copy must not
          // be served after a future memory eviction of a *newer* version.
          shard.disk->Erase(key);
        }
        HandleMemoryEvictions(shard, evicted, removed);
      } else {
        DiskStore::SpillMeta spill;
        spill.durable_tag = durable_tag;
        if (ttl) {
          spill.expires_at_micros =
              WallNowMicros() +
              std::chrono::duration_cast<std::chrono::microseconds>(*ttl).count();
        }
        std::vector<std::string> disk_victims;
        stored = shard.disk->Put(key, value->Serialize(), spill, &disk_victims);
        for (const std::string& victim : disk_victims) {
          shard.meta.erase(victim);
          removed.push_back({victim, RemovalCause::kEvicted});
          ++shard.stats.evictions;
        }
      }

      if (stored) {
        ++shard.stats.puts;
        Meta& meta = shard.meta[key];
        meta.generation = ++shard.generation_counter;
        meta.durable_tag = std::move(durable_tag);
        if (ttl) {
          const TimePoint deadline = now_() + *ttl;
          meta.expires_at_ns.store(ToNs(deadline), std::memory_order_relaxed);
          shard.expiry_heap.push({deadline, key, meta.generation});
        } else {
          meta.expires_at_ns.store(kNoDeadlineNs, std::memory_order_relaxed);
        }
        // Replacing a key is not a removal of the key (the listener keeps any
        // dependency registration for it); kReplaced is reported in the log
        // only.
        replaced = replacing;
      }
    }
  }
  Log("put", key,
      !admitted ? (decision == AdmitDecision::kRejectSequence ? "seq-stale" : "stale")
                : stored ? (replaced ? "replace" : "")
                         : "rejected");
  NotifyRemovals(removed);
  return stored;
}

CacheValuePtr GpsCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  if (config_.eviction == EvictionPolicy::kClock) {
    // Lock-light fast path (docs/CONCURRENCY.md): memory hits and clean
    // misses are resolved under the *shared* shard lock — a hit only sets
    // the entry's atomic reference bit and loads its atomic expiry
    // deadline. A reader that needs to mutate anything (disk read + hybrid
    // promotion, metadata repair) falls through to the exclusive path.
    enum class Fast { kHit, kMiss, kLazyExpired, kFallThrough };
    Fast outcome = Fast::kFallThrough;
    CacheValuePtr result;
    {
      std::shared_lock<std::shared_mutex> lock(shard.mutex);
      auto meta_it = shard.meta.find(key);
      if (meta_it == shard.meta.end()) {
        outcome = Fast::kMiss;
      } else if (DeadlinePassed(meta_it->second)) {
        // Served-as-miss; the entry stays resident until the next writer's
        // ExpireDueLocked sweep reaps it (lazy expiry).
        outcome = Fast::kLazyExpired;
      } else if (shard.memory && (result = shard.memory->Get(key)) != nullptr) {
        outcome = Fast::kHit;
      }
    }
    if (outcome != Fast::kFallThrough) {
      // Counters and logging happen outside the lock; the stripes are
      // relaxed atomics, so no lock is needed at all.
      HitPathStripe& stripe = shard.hit_counters.Local();
      if (outcome == Fast::kHit) {
        stripe.RecordHit(/*memory_hit=*/true);
      } else {
        stripe.RecordMiss(/*lazy_expired=*/outcome == Fast::kLazyExpired);
      }
      Log(outcome == Fast::kHit ? "hit" : "miss", key);
      return result;
    }
  }
  return GetExclusive(key, shard);
}

CacheValuePtr GpsCache::GetExclusive(const std::string& key, Shard& shard) {
  std::vector<std::pair<std::string, RemovalCause>> removed;
  CacheValuePtr result;
  bool memory_hit = false;
  {
    std::lock_guard<std::shared_mutex> lock(shard.mutex);
    ExpireDueLocked(shard, removed);

    auto meta_it = shard.meta.find(key);
    if (meta_it != shard.meta.end() && DeadlinePassed(meta_it->second)) {
      RemoveLocked(shard, key, RemovalCause::kExpired, removed);
      ++shard.stats.expirations;
      meta_it = shard.meta.end();
    } else if (meta_it != shard.meta.end()) {
      if (shard.memory) {
        result = shard.memory->Get(key);
        memory_hit = result != nullptr;
      }
      if (!result && shard.disk) {
        std::string bytes;
        if (shard.disk->Read(key, &bytes) == DiskStore::ReadStatus::kHit) {
          // The CRC already checked out, but the deserializer is the last
          // line of defense (e.g. a value written by a buggy serializer):
          // a throw here must cost one miss, never the serving thread.
          try {
            result = config_.deserializer(bytes);
          } catch (const std::exception&) {
            result = nullptr;
            shard.disk->QuarantineEntry(key);
          }
        }
        if (result) {
          ++shard.stats.disk_hits;
          if (config_.mode == CacheMode::kHybrid) {
            // Promote to memory; spill victims back to disk.
            std::vector<MemoryStore::Evicted> evicted;
            if (shard.memory->Put(key, result, &evicted)) shard.disk->Erase(key);
            HandleMemoryEvictions(shard, evicted, removed);
          }
        }
      }
    }

    if (!result && shard.meta.count(key)) {
      // Metadata without data (fully evicted under us) — clean up.
      RemoveLocked(shard, key, RemovalCause::kEvicted, removed);
    }
  }
  // Per-hit counters go to the striped atomics even on the exclusive path,
  // so every lookup is counted exactly once in exactly one place.
  HitPathStripe& stripe = shard.hit_counters.Local();
  if (result) {
    stripe.RecordHit(memory_hit);
  } else {
    stripe.RecordMiss();
  }
  Log(result ? "hit" : "miss", key);
  NotifyRemovals(removed);
  return result;
}

bool GpsCache::Contains(const std::string& key) {
  Shard& shard = ShardFor(key);
  // Shared lock under either policy: Contains only reads the meta map and
  // the stores' const indexes (no recency side effects to serialize).
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.meta.find(key);
  if (it == shard.meta.end()) return false;
  if (DeadlinePassed(it->second)) return false;
  return (shard.memory && shard.memory->Contains(key)) ||
         (shard.disk && shard.disk->Contains(key));
}

bool GpsCache::Invalidate(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::vector<std::pair<std::string, RemovalCause>> removed;
  bool present;
  {
    std::lock_guard<std::shared_mutex> lock(shard.mutex);
    ++shard.stats.invalidate_shard_locks;
    present = RemoveLocked(shard, key, RemovalCause::kInvalidated, removed);
    if (present) ++shard.stats.invalidations;
  }
  Log("invalidate", key, present ? "" : "absent");
  NotifyRemovals(removed);
  return present;
}

size_t GpsCache::InvalidateBatch(const std::vector<std::string>& keys) {
  if (keys.empty()) return 0;
  // Group keys by owning shard so each shard's mutex is taken once.
  std::vector<std::vector<const std::string*>> by_shard(shards_.size());
  for (const std::string& key : keys) {
    const size_t shard =
        shards_.size() == 1 ? 0 : std::hash<std::string>{}(key) % shards_.size();
    by_shard[shard].push_back(&key);
  }
  std::vector<std::pair<std::string, RemovalCause>> removed;
  size_t present = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (by_shard[i].empty()) continue;
    Shard& shard = *shards_[i];
    std::lock_guard<std::shared_mutex> lock(shard.mutex);
    ++shard.stats.invalidate_shard_locks;
    for (const std::string* key : by_shard[i]) {
      if (RemoveLocked(shard, *key, RemovalCause::kInvalidated, removed)) {
        ++shard.stats.invalidations;
        ++present;
      }
    }
  }
  if (log_) {
    for (const std::string& key : keys) Log("invalidate", key, "");
  }
  NotifyRemovals(removed);
  return present;
}

void GpsCache::Clear() {
  std::vector<std::pair<std::string, RemovalCause>> removed;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::shared_mutex> lock(shard.mutex);
    for (const auto& [key, meta] : shard.meta) {
      removed.push_back({key, RemovalCause::kCleared});
    }
    if (shard.memory) shard.memory->Clear();
    if (shard.disk) shard.disk->Clear();
    shard.meta.clear();
    while (!shard.expiry_heap.empty()) shard.expiry_heap.pop();
    // One logical clear; counted once (stats() sums the shards).
    if (i == 0) ++shard.stats.clears;
  }
  Log("clear", "*");
  NotifyRemovals(removed);
}

size_t GpsCache::ExpireDue() {
  std::vector<std::pair<std::string, RemovalCause>> removed;
  size_t n = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::shared_mutex> lock(shard->mutex);
    n += ExpireDueLocked(*shard, removed);
  }
  NotifyRemovals(removed);
  return n;
}

void GpsCache::SetRemovalListener(RemovalListener listener) {
  std::lock_guard<std::mutex> lock(listener_mutex_);
  removal_listener_ = std::move(listener);
}

CacheStats GpsCache::ShardStatsLocked(const Shard& shard) const {
  CacheStats s = shard.stats;
  shard.hit_counters.FoldInto(s);
  if (shard.disk) {
    // The disk tier is the single source of truth for its own failure
    // counters; folded in at snapshot time.
    s.disk_errors += shard.disk->io_errors();
    s.quarantined += shard.disk->quarantined();
  }
  return s;
}

CacheStats GpsCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    // Shared suffices: shard.stats is only written under the exclusive
    // lock, and the hit stripes are atomics.
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += ShardStatsLocked(*shard);
  }
  return total;
}

CacheStats GpsCache::shard_stats(size_t shard) const {
  const Shard& s = *shards_.at(shard);
  std::shared_lock<std::shared_mutex> lock(s.mutex);
  return ShardStatsLocked(s);
}

size_t GpsCache::shard_entry_count(size_t shard) const {
  const Shard& s = *shards_.at(shard);
  std::shared_lock<std::shared_mutex> lock(s.mutex);
  return s.meta.size();
}

size_t GpsCache::entry_count() {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->meta.size();
  }
  return total;
}

size_t GpsCache::memory_bytes() {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    if (shard->memory) total += shard->memory->byte_count();
  }
  return total;
}

size_t GpsCache::disk_bytes() {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    if (shard->disk) total += shard->disk->byte_count();
  }
  return total;
}

void GpsCache::FlushLog() {
  if (log_) log_->Flush();
}

bool GpsCache::RemoveLocked(Shard& shard, const std::string& key, RemovalCause cause,
                            std::vector<std::pair<std::string, RemovalCause>>& removed) {
  bool present = false;
  if (shard.memory && shard.memory->Erase(key)) present = true;
  if (shard.disk && shard.disk->Erase(key)) present = true;
  if (shard.meta.erase(key) > 0) present = true;
  if (present) removed.push_back({key, cause});
  return present;
}

size_t GpsCache::ExpireDueLocked(Shard& shard,
                                 std::vector<std::pair<std::string, RemovalCause>>& removed) {
  const TimePoint now = now_();
  size_t expired = 0;
  while (!shard.expiry_heap.empty() && shard.expiry_heap.top().when <= now) {
    const ExpiryItem item = shard.expiry_heap.top();
    shard.expiry_heap.pop();
    auto it = shard.meta.find(item.key);
    // Stale heap entries (replaced or already-removed objects) are skipped;
    // this lazy deletion is what makes expiration O(log n) per event.
    if (it == shard.meta.end() || it->second.generation != item.generation) continue;
    RemoveLocked(shard, item.key, RemovalCause::kExpired, removed);
    ++shard.stats.expirations;
    ++expired;
  }
  return expired;
}

void GpsCache::HandleMemoryEvictions(Shard& shard, std::vector<MemoryStore::Evicted>& evicted,
                                     std::vector<std::pair<std::string, RemovalCause>>& removed) {
  for (MemoryStore::Evicted& victim : evicted) {
    if (config_.mode == CacheMode::kHybrid) {
      // Spill with the victim's persisted metadata: its durable tag and
      // (wall-clock) expiration ride along so a recovery after restart
      // sees the same entry the memory tier held.
      DiskStore::SpillMeta spill;
      if (auto meta_it = shard.meta.find(victim.key); meta_it != shard.meta.end()) {
        spill.durable_tag = meta_it->second.durable_tag;
        spill.expires_at_micros =
            WallExpiry(meta_it->second.expires_at_ns.load(std::memory_order_relaxed));
      }
      std::vector<std::string> disk_victims;
      if (shard.disk->Put(victim.key, victim.value->Serialize(), spill, &disk_victims)) {
        ++shard.stats.spills;
      } else {
        shard.meta.erase(victim.key);
        removed.push_back({victim.key, RemovalCause::kEvicted});
        ++shard.stats.evictions;
      }
      for (const std::string& disk_victim : disk_victims) {
        shard.meta.erase(disk_victim);
        removed.push_back({disk_victim, RemovalCause::kEvicted});
        ++shard.stats.evictions;
      }
    } else {
      shard.meta.erase(victim.key);
      removed.push_back({victim.key, RemovalCause::kEvicted});
      ++shard.stats.evictions;
    }
  }
  evicted.clear();
}

void GpsCache::NotifyRemovals(const std::vector<std::pair<std::string, RemovalCause>>& removed) {
  if (removed.empty()) return;
  RemovalListener listener;
  {
    std::lock_guard<std::mutex> lock(listener_mutex_);
    listener = removal_listener_;
  }
  if (!listener) return;
  for (const auto& [key, cause] : removed) listener(key, cause);
}

}  // namespace qc::cache
