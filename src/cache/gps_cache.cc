#include "cache/gps_cache.h"

#include "common/error.h"

namespace qc::cache {

const char* RemovalCauseName(RemovalCause cause) {
  switch (cause) {
    case RemovalCause::kInvalidated: return "invalidated";
    case RemovalCause::kEvicted: return "evicted";
    case RemovalCause::kExpired: return "expired";
    case RemovalCause::kCleared: return "cleared";
    case RemovalCause::kReplaced: return "replaced";
  }
  return "?";
}

GpsCache::GpsCache(GpsCacheConfig config) : config_(std::move(config)) {
  now_ = config_.now ? config_.now : [] { return std::chrono::steady_clock::now(); };
  if (config_.mode != CacheMode::kDisk) {
    memory_ = std::make_unique<MemoryStore>(config_.memory_budget_bytes,
                                            config_.memory_max_entries);
  }
  if (config_.mode != CacheMode::kMemory) {
    if (config_.disk_directory.empty()) {
      throw CacheError("disk/hybrid mode requires disk_directory");
    }
    if (!config_.deserializer) {
      throw CacheError("disk/hybrid mode requires a deserializer");
    }
    disk_ = std::make_unique<DiskStore>(config_.disk_directory, config_.disk_budget_bytes);
  }
  if (!config_.log_path.empty()) {
    log_ = std::make_unique<TransactionLog>(config_.log_path, config_.log_policy,
                                            config_.log_buffer_bytes);
  }
}

void GpsCache::Log(std::string_view op, std::string_view key, std::string_view detail) {
  if (log_) log_->Append(op, key, detail);
}

bool GpsCache::Put(const std::string& key, CacheValuePtr value, std::optional<Duration> ttl) {
  std::vector<std::pair<std::string, RemovalCause>> removed;
  bool stored = false;
  bool replaced = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ExpireDueLocked(removed);

    auto meta_it = meta_.find(key);
    const bool replacing = meta_it != meta_.end();

    if (memory_) {
      std::vector<MemoryStore::Evicted> evicted;
      stored = memory_->Put(key, value, &evicted);
      if (stored && config_.mode == CacheMode::kHybrid) {
        // The memory copy is authoritative now; a stale disk copy must not
        // be served after a future memory eviction of a *newer* version.
        disk_->Erase(key);
      }
      HandleMemoryEvictions(evicted, removed);
    } else {
      std::vector<std::string> disk_victims;
      stored = disk_->Put(key, value->Serialize(), &disk_victims);
      for (const std::string& victim : disk_victims) {
        meta_.erase(victim);
        removed.push_back({victim, RemovalCause::kEvicted});
        ++stats_.evictions;
      }
    }

    if (stored) {
      ++stats_.puts;
      Meta& meta = meta_[key];
      meta.generation = ++generation_counter_;
      if (ttl) {
        meta.expires_at = now_() + *ttl;
        expiry_heap_.push({*meta.expires_at, key, meta.generation});
      } else {
        meta.expires_at.reset();
      }
      // Replacing a key is not a removal of the key (the listener keeps any
      // dependency registration for it); kReplaced is reported in the log
      // only.
      replaced = replacing;
    }
  }
  Log("put", key, stored ? (replaced ? "replace" : "") : "rejected");
  NotifyRemovals(removed);
  return stored;
}

CacheValuePtr GpsCache::Get(const std::string& key) {
  std::vector<std::pair<std::string, RemovalCause>> removed;
  CacheValuePtr result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    ExpireDueLocked(removed);

    auto meta_it = meta_.find(key);
    if (meta_it != meta_.end() && meta_it->second.expires_at && *meta_it->second.expires_at <= now_()) {
      RemoveLocked(key, RemovalCause::kExpired, removed);
      ++stats_.expirations;
      meta_it = meta_.end();
    } else if (meta_it != meta_.end()) {
      if (memory_) result = memory_->Get(key);
      if (!result && disk_) {
        auto bytes = disk_->Get(key);
        if (bytes) {
          result = config_.deserializer(*bytes);
          ++stats_.disk_hits;
          if (config_.mode == CacheMode::kHybrid && result) {
            // Promote to memory; spill victims back to disk.
            std::vector<MemoryStore::Evicted> evicted;
            if (memory_->Put(key, result, &evicted)) disk_->Erase(key);
            HandleMemoryEvictions(evicted, removed);
          }
        }
      } else if (result) {
        ++stats_.memory_hits;
      }
    }

    if (result) {
      ++stats_.hits;
    } else {
      ++stats_.misses;
      if (meta_it != meta_.end() || meta_.count(key)) {
        // Metadata without data (fully evicted under us) — clean up.
        RemoveLocked(key, RemovalCause::kEvicted, removed);
      }
    }
  }
  Log(result ? "hit" : "miss", key);
  NotifyRemovals(removed);
  return result;
}

bool GpsCache::Contains(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = meta_.find(key);
  if (it == meta_.end()) return false;
  if (it->second.expires_at && *it->second.expires_at <= now_()) return false;
  return (memory_ && memory_->Contains(key)) || (disk_ && disk_->Contains(key));
}

bool GpsCache::Invalidate(const std::string& key) {
  std::vector<std::pair<std::string, RemovalCause>> removed;
  bool present;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    present = RemoveLocked(key, RemovalCause::kInvalidated, removed);
    if (present) ++stats_.invalidations;
  }
  Log("invalidate", key, present ? "" : "absent");
  NotifyRemovals(removed);
  return present;
}

void GpsCache::Clear() {
  std::vector<std::pair<std::string, RemovalCause>> removed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    removed.reserve(meta_.size());
    for (const auto& [key, meta] : meta_) removed.push_back({key, RemovalCause::kCleared});
    if (memory_) memory_->Clear();
    if (disk_) disk_->Clear();
    meta_.clear();
    while (!expiry_heap_.empty()) expiry_heap_.pop();
    ++stats_.clears;
  }
  Log("clear", "*");
  NotifyRemovals(removed);
}

size_t GpsCache::ExpireDue() {
  std::vector<std::pair<std::string, RemovalCause>> removed;
  size_t n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    n = ExpireDueLocked(removed);
  }
  NotifyRemovals(removed);
  return n;
}

void GpsCache::SetRemovalListener(RemovalListener listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  removal_listener_ = std::move(listener);
}

CacheStats GpsCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t GpsCache::entry_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  return meta_.size();
}

size_t GpsCache::memory_bytes() {
  std::lock_guard<std::mutex> lock(mutex_);
  return memory_ ? memory_->byte_count() : 0;
}

size_t GpsCache::disk_bytes() {
  std::lock_guard<std::mutex> lock(mutex_);
  return disk_ ? disk_->byte_count() : 0;
}

void GpsCache::FlushLog() {
  if (log_) log_->Flush();
}

bool GpsCache::RemoveLocked(const std::string& key, RemovalCause cause,
                            std::vector<std::pair<std::string, RemovalCause>>& removed) {
  bool present = false;
  if (memory_ && memory_->Erase(key)) present = true;
  if (disk_ && disk_->Erase(key)) present = true;
  if (meta_.erase(key) > 0) present = true;
  if (present) removed.push_back({key, cause});
  return present;
}

size_t GpsCache::ExpireDueLocked(std::vector<std::pair<std::string, RemovalCause>>& removed) {
  const TimePoint now = now_();
  size_t expired = 0;
  while (!expiry_heap_.empty() && expiry_heap_.top().when <= now) {
    const ExpiryItem item = expiry_heap_.top();
    expiry_heap_.pop();
    auto it = meta_.find(item.key);
    // Stale heap entries (replaced or already-removed objects) are skipped;
    // this lazy deletion is what makes expiration O(log n) per event.
    if (it == meta_.end() || it->second.generation != item.generation) continue;
    RemoveLocked(item.key, RemovalCause::kExpired, removed);
    ++stats_.expirations;
    ++expired;
  }
  return expired;
}

void GpsCache::HandleMemoryEvictions(std::vector<MemoryStore::Evicted>& evicted,
                                     std::vector<std::pair<std::string, RemovalCause>>& removed) {
  for (MemoryStore::Evicted& victim : evicted) {
    if (config_.mode == CacheMode::kHybrid) {
      std::vector<std::string> disk_victims;
      if (disk_->Put(victim.key, victim.value->Serialize(), &disk_victims)) {
        ++stats_.spills;
      } else {
        meta_.erase(victim.key);
        removed.push_back({victim.key, RemovalCause::kEvicted});
        ++stats_.evictions;
      }
      for (const std::string& disk_victim : disk_victims) {
        meta_.erase(disk_victim);
        removed.push_back({disk_victim, RemovalCause::kEvicted});
        ++stats_.evictions;
      }
    } else {
      meta_.erase(victim.key);
      removed.push_back({victim.key, RemovalCause::kEvicted});
      ++stats_.evictions;
    }
  }
  evicted.clear();
}

void GpsCache::NotifyRemovals(const std::vector<std::pair<std::string, RemovalCause>>& removed) {
  if (removed.empty()) return;
  RemovalListener listener;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    listener = removal_listener_;
  }
  if (!listener) return;
  for (const auto& [key, cause] : removed) listener(key, cause);
}

}  // namespace qc::cache
