// Cache statistics counters.
//
// @thread_safety CacheStats is a plain value type (a snapshot); the
// GpsCache maintains one instance per shard under that shard's lock for
// the writer-side counters, plus a HitPathCounters block of striped
// relaxed atomics for the per-hit counters (lookups/hits/misses/...),
// which the lock-light read path bumps without holding the shard lock.
// Both are folded into one CacheStats when GpsCache::stats() or
// shard_stats() is called.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace qc::cache {

/// Every CacheStats counter, in declaration order. operator+=, ToString
/// and ForEachCounter are generated from this list, so adding a counter
/// here is the *only* step needed to aggregate it — and the static_assert
/// under CacheStats makes forgetting to list a new field a compile error
/// instead of a silently-dropped counter (the reflection tests in
/// tests/cache/clock_eviction_test.cc enforce the rest).
#define QC_CACHE_STATS_COUNTERS(X) \
  X(lookups)                       \
  X(hits)                          \
  X(memory_hits)                   \
  X(disk_hits)                     \
  X(misses)                        \
  X(lazy_expired_misses)           \
  X(puts)                          \
  X(invalidations)                 \
  X(invalidate_shard_locks)        \
  X(evictions)                     \
  X(spills)                        \
  X(expirations)                   \
  X(clears)                        \
  X(admit_rejects)                 \
  X(seq_admit_rejects)             \
  X(disk_errors)                   \
  X(quarantined)                   \
  X(recovered)                     \
  X(semantic_probes)               \
  X(semantic_hits)                 \
  X(semantic_rejects_shape)        \
  X(semantic_rejects_projection)   \
  X(semantic_rejects_epoch)        \
  X(residual_filter_ns)

struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t memory_hits = 0;
  uint64_t disk_hits = 0;
  uint64_t misses = 0;
  uint64_t lazy_expired_misses = 0;  // expired entries served as misses under a
                                     // shared lock; reaped by the next writer
  uint64_t puts = 0;
  uint64_t invalidations = 0;   // explicit Invalidate/Delete calls that removed an entry
  uint64_t invalidate_shard_locks = 0;  // shard-lock acquisitions spent on invalidation
  uint64_t evictions = 0;       // budget-driven removals
  uint64_t spills = 0;          // memory→disk demotions (hybrid mode)
  uint64_t expirations = 0;     // expiry-time removals
  uint64_t clears = 0;          // whole-cache flushes (Policy I)
  uint64_t admit_rejects = 0;   // guarded Puts rejected by the admission check
  uint64_t seq_admit_rejects = 0;  // of which: refused by the CDC sequence gate
                                   // (cache nodes; docs/CLUSTER.md)
  uint64_t disk_errors = 0;     // disk-tier I/O failures degraded to misses
  uint64_t quarantined = 0;     // corrupt spill files renamed aside
  uint64_t recovered = 0;       // entries restored by recover_on_open

  // Semantic lookup ladder (docs/SEMANTIC.md; maintained by the middleware
  // engine's SemanticIndex and folded into its cache_stats() snapshots —
  // the cache itself stores exact fingerprints only). A semantic hit is an
  // exact-tier miss, so it is NOT part of `hits`/HitRate above; the
  // engine-level hit rate counts it.
  uint64_t semantic_probes = 0;   // exact misses that consulted the index
  uint64_t semantic_hits = 0;     // answered from a cached superset
  uint64_t semantic_rejects_shape = 0;       // unsupported statement shape
  uint64_t semantic_rejects_projection = 0;  // superset found, projection short
  uint64_t semantic_rejects_epoch = 0;       // update raced the residual filter
  uint64_t residual_filter_ns = 0;  // total time filtering cached rows

  double HitRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  /// Shard aggregation: field-wise sum (generated from the counter list).
  CacheStats& operator+=(const CacheStats& other);

  /// Visit every counter as (name, value). The mutable overload lets the
  /// reflection tests set every field without naming them one by one.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
#define QC_CACHE_STATS_VISIT(name) fn(#name, name);
    QC_CACHE_STATS_COUNTERS(QC_CACHE_STATS_VISIT)
#undef QC_CACHE_STATS_VISIT
  }
  template <typename Fn>
  void ForEachCounter(Fn&& fn) {
#define QC_CACHE_STATS_VISIT(name) fn(#name, name);
    QC_CACHE_STATS_COUNTERS(QC_CACHE_STATS_VISIT)
#undef QC_CACHE_STATS_VISIT
  }

  std::string ToString() const;
};

// A counter declared in the struct but missing from QC_CACHE_STATS_COUNTERS
// would silently skip aggregation; the size check turns that into a compile
// error (CacheStats holds nothing but uint64_t counters).
#define QC_CACHE_STATS_COUNT(name) +1
static_assert(sizeof(CacheStats) ==
                  (0 QC_CACHE_STATS_COUNTERS(QC_CACHE_STATS_COUNT)) * sizeof(uint64_t),
              "every CacheStats field must be listed in QC_CACHE_STATS_COUNTERS");
#undef QC_CACHE_STATS_COUNT

/// One cache line of relaxed atomic per-hit counters. The lock-light read
/// path (docs/CONCURRENCY.md, "Lock-light hit path") bumps these without
/// the shard lock; striping keeps concurrent readers from ping-ponging a
/// single counter line between cores.
struct alignas(64) HitPathStripe {
  std::atomic<uint64_t> lookups{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> memory_hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> lazy_expired_misses{0};

  void RecordHit(bool memory_hit) {
    lookups.fetch_add(1, std::memory_order_relaxed);
    hits.fetch_add(1, std::memory_order_relaxed);
    if (memory_hit) memory_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordMiss(bool lazy_expired = false) {
    lookups.fetch_add(1, std::memory_order_relaxed);
    misses.fetch_add(1, std::memory_order_relaxed);
    if (lazy_expired) lazy_expired_misses.fetch_add(1, std::memory_order_relaxed);
  }
};

/// Striped per-hit counters: each thread hashes to one stripe, FoldInto
/// sums the stripes into a CacheStats snapshot. Writes are relaxed — the
/// totals are exact once the writing threads are quiescent (or observed
/// under the owning shard's exclusive lock), which is all the stats
/// surface promises.
class HitPathCounters {
 public:
  HitPathStripe& Local();
  void FoldInto(CacheStats& stats) const;

 private:
  static constexpr size_t kStripes = 8;
  HitPathStripe stripes_[kStripes];
};

}  // namespace qc::cache
