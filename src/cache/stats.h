// Cache statistics counters.
//
// @thread_safety CacheStats is a plain value type (a snapshot); the
// GpsCache maintains one instance per shard under that shard's mutex and
// aggregates them with operator+= when GpsCache::stats() is called.
#pragma once

#include <cstdint>
#include <string>

namespace qc::cache {

struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t memory_hits = 0;
  uint64_t disk_hits = 0;
  uint64_t misses = 0;
  uint64_t puts = 0;
  uint64_t invalidations = 0;   // explicit Invalidate/Delete calls that removed an entry
  uint64_t invalidate_shard_locks = 0;  // shard-mutex acquisitions spent on invalidation
  uint64_t evictions = 0;       // budget-driven removals
  uint64_t spills = 0;          // memory→disk demotions (hybrid mode)
  uint64_t expirations = 0;     // expiry-time removals
  uint64_t clears = 0;          // whole-cache flushes (Policy I)
  uint64_t admit_rejects = 0;   // guarded Puts rejected by the admission check
  uint64_t disk_errors = 0;     // disk-tier I/O failures degraded to misses
  uint64_t quarantined = 0;     // corrupt spill files renamed aside
  uint64_t recovered = 0;       // entries restored by recover_on_open

  double HitRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  /// Shard aggregation: field-wise sum.
  CacheStats& operator+=(const CacheStats& other);

  std::string ToString() const;
};

}  // namespace qc::cache
