// Cache transaction logging (paper §3).
//
// Every cache transaction (add/hit/miss/invalidate/...) can be appended to
// a log file. The flush policy trades durability for overhead exactly as
// the paper describes: flushing every record keeps the log current but is
// expensive; buffering several records amortizes the cost at the risk of
// losing the tail on a crash.
//
// Records stamp wall-clock microseconds since the Unix epoch, so logs
// appended across successive runs of one cache stay on a single timeline —
// a post-crash inspection can correlate the tail of the previous session
// with the recovery of the next. Each open additionally writes a session
// header record ("session open ...") marking the process boundary; the
// header names the log format version and flush policy, which is what a
// replayer needs to interpret the records that follow.
//
// @thread_safety Internally synchronized: Append/Flush may be called from
// any thread (all GpsCache shards share one log). Records from concurrent
// transactions interleave at record granularity, never mid-line.
#pragma once

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace qc::cache {

enum class LogFlushPolicy {
  kEveryRecord,  // fflush after each append
  kBuffered,     // flush when the in-process buffer exceeds a threshold
  kManual,       // flush only on explicit Flush()/close
};

class TransactionLog {
 public:
  /// Opens `path` for appending. Throws CacheError on failure.
  TransactionLog(const std::string& path, LogFlushPolicy policy,
                 size_t buffer_threshold_bytes = 64 * 1024);
  ~TransactionLog();

  TransactionLog(const TransactionLog&) = delete;
  TransactionLog& operator=(const TransactionLog&) = delete;

  /// Append one record: `<epoch-micros> <op> <key> [detail]\n`.
  void Append(std::string_view op, std::string_view key, std::string_view detail = {});

  /// Force buffered records to the file system.
  void Flush();

  /// Records appended by callers; the session header is excluded so counts
  /// line up with cache transactions.
  uint64_t records_written() const { return records_; }
  uint64_t flushes() const { return flushes_; }

 private:
  void AppendLocked(std::string_view op, std::string_view key, std::string_view detail);
  void FlushLocked();

  std::FILE* file_ = nullptr;
  LogFlushPolicy policy_;
  size_t buffer_threshold_;
  std::string buffer_;
  std::mutex mutex_;
  uint64_t records_ = 0;
  uint64_t flushes_ = 0;
};

}  // namespace qc::cache
