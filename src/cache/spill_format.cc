#include "cache/spill_format.h"

#include <cstring>

#include "common/crc32.h"

namespace qc::cache {

namespace {

template <typename T>
void AppendRaw(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T ReadRaw(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

std::string EncodeSpillRecord(std::string_view key, std::string_view durable_tag,
                              int64_t expires_at_micros, std::string_view payload) {
  std::string out;
  out.reserve(SpillRecordBytes(key.size(), durable_tag.size(), payload.size()));
  out.append(kSpillMagic, sizeof(kSpillMagic));
  AppendRaw<uint32_t>(out, kSpillVersion);
  AppendRaw<uint32_t>(out, static_cast<uint32_t>(key.size()));
  AppendRaw<uint32_t>(out, static_cast<uint32_t>(durable_tag.size()));
  AppendRaw<uint64_t>(out, payload.size());
  AppendRaw<int64_t>(out, expires_at_micros);
  uint32_t crc = Crc32Update(0, key.data(), key.size());
  crc = Crc32Update(crc, durable_tag.data(), durable_tag.size());
  crc = Crc32Update(crc, payload.data(), payload.size());
  AppendRaw<uint32_t>(out, crc);
  out.append(key);
  out.append(durable_tag);
  out.append(payload);
  return out;
}

bool DecodeSpillRecord(std::string_view bytes, SpillRecord* out) {
  if (bytes.size() < kSpillHeaderBytes) return false;
  const char* p = bytes.data();
  if (std::memcmp(p, kSpillMagic, sizeof(kSpillMagic)) != 0) return false;
  if (ReadRaw<uint32_t>(p + 4) != kSpillVersion) return false;
  const uint32_t key_len = ReadRaw<uint32_t>(p + 8);
  const uint32_t tag_len = ReadRaw<uint32_t>(p + 12);
  const uint64_t payload_len = ReadRaw<uint64_t>(p + 16);
  const int64_t expires = ReadRaw<int64_t>(p + 24);
  const uint32_t stored_crc = ReadRaw<uint32_t>(p + 32);
  // Exact size match: a truncated or appended-to file is corrupt, full stop.
  if (bytes.size() != SpillRecordBytes(key_len, tag_len, payload_len)) return false;
  const char* body = p + kSpillHeaderBytes;
  uint32_t crc = Crc32Update(0, body, key_len);
  crc = Crc32Update(crc, body + key_len, tag_len);
  crc = Crc32Update(crc, body + key_len + tag_len, payload_len);
  if (crc != stored_crc) return false;
  out->key.assign(body, key_len);
  out->durable_tag.assign(body + key_len, tag_len);
  out->expires_at_micros = expires;
  out->payload.assign(body + key_len + tag_len, payload_len);
  return true;
}

}  // namespace qc::cache
