// Objects the GPS cache stores.
//
// The GPS cache is general-purpose (§3): ABR stores query results, the Web
// accelerator stores pages. Cacheables implement this small interface so
// the cache can enforce byte budgets and spill entries to the disk store.
//
// @thread_safety Cached values are shared across threads after insertion
// (Get returns the same shared_ptr a concurrent reader may hold), so
// implementations must be deeply immutable once published: ByteSize() and
// Serialize() must be const in the strong sense — no caching, no lazy
// initialization — or must synchronize internally.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace qc::cache {

class CacheValue {
 public:
  virtual ~CacheValue() = default;

  /// Approximate in-memory footprint, used for the memory budget.
  virtual size_t ByteSize() const = 0;

  /// Serialized form for the disk store. Must round-trip through the
  /// cache's configured deserializer.
  virtual std::string Serialize() const = 0;
};

using CacheValuePtr = std::shared_ptr<const CacheValue>;

/// Rebuilds a CacheValue from its serialized form (disk store reads).
using Deserializer = std::function<CacheValuePtr(std::string_view)>;

/// The simplest cacheable: a byte string (what a Web page cache stores).
class StringValue : public CacheValue {
 public:
  explicit StringValue(std::string data) : data_(std::move(data)) {}

  const std::string& data() const { return data_; }
  size_t ByteSize() const override { return data_.size() + sizeof(*this); }
  std::string Serialize() const override { return data_; }

  static CacheValuePtr Deserialize(std::string_view bytes) {
    return std::make_shared<StringValue>(std::string(bytes));
  }

 private:
  std::string data_;
};

}  // namespace qc::cache
