// The General-Purpose Software cache (GPS cache) of paper §3.
//
// A pluggable, thread-safe object cache with
//   * memory, disk, or hybrid (memory + disk spill) storage,
//   * an optionally crash-safe disk tier: with recover_on_open, spill
//     files are self-describing (CRC-verified) and are re-indexed on
//     construction instead of wiped, so the cache survives restarts and
//     corrupt files degrade to counted misses (docs/PERSISTENCE.md),
//   * rw-lock-striped shards (keyed by fingerprint hash) with a choice of
//     replacement policy per GpsCacheConfig::eviction: CLOCK/second-chance
//     (the default — hits run under a *shared* shard lock and only set an
//     atomic reference bit) or exact LRU (hits splice a list under the
//     exclusive lock), each under byte/entry budgets,
//   * an efficient expiration-time mechanism (lazy min-heap, per shard;
//     under CLOCK, expired entries are served-as-miss from the shared-lock
//     path and reaped by the next writer),
//   * optional transaction logging with configurable flush policy,
//   * statistics (per shard: writer counters under the shard lock, per-hit
//     counters on striped relaxed atomics; aggregated on read),
//   * a removal listener so higher layers (the DUP engine) can keep the
//     ODG in sync with what is actually cached, and
//   * an admission guard on Put, evaluated under the exclusive shard lock,
//     which the middleware uses for epoch-validated registration
//     (dup/epochs.h).
//
// @thread_safety GpsCache is internally synchronized; every public method
// may be called from any thread. Each key hashes to one shard with its own
// shared_mutex: Get/Contains acquire it shared where the eviction policy
// allows (kClock memory hits, all clean misses), while fills, evictions,
// invalidations, disk reads/promotions and expiry reaping acquire it
// exclusive (docs/CONCURRENCY.md, "Lock-light hit path"). The removal
// listener and the Put admission guard are invoked with specific locking
// guarantees — see their declarations. With shards > 1, replacement order
// and budgets are per shard (total budgets are split evenly), so global
// eviction order is only approximate; shards = 1 (the default) preserves a
// single replacement domain.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/disk_store.h"
#include "cache/memory_store.h"
#include "cache/stats.h"
#include "cache/txlog.h"
#include "cache/value.h"

namespace qc::cache {

using TimePoint = std::chrono::steady_clock::time_point;
using Duration = std::chrono::steady_clock::duration;
using TimeSource = std::function<TimePoint()>;

enum class CacheMode { kMemory, kDisk, kHybrid };

enum class RemovalCause {
  kInvalidated,  // explicit Invalidate()
  kEvicted,      // budget pressure removed it from every level
  kExpired,      // expiration time passed
  kCleared,      // whole-cache Clear()
  kReplaced,     // Put() over an existing key
};

const char* RemovalCauseName(RemovalCause cause);

struct GpsCacheConfig {
  CacheMode mode = CacheMode::kMemory;

  /// Crash-safe disk tier (docs/PERSISTENCE.md). When true (kDisk/kHybrid
  /// modes), the spool directory is scanned on construction instead of
  /// wiped: spill files that pass their CRC are re-indexed (already-expired
  /// ones dropped, corrupt ones quarantined and counted, never thrown) and
  /// the spool outlives this instance, so cached entries survive process
  /// restarts — including unclean ones. Recovered entries are listed in
  /// recovered_entries() so the middleware can re-register their DUP
  /// dependencies. Reopening requires the same shard count (keys hash to
  /// per-shard spool subdirectories); entries found in the wrong shard's
  /// spool are discarded.
  bool recover_on_open = false;

  /// Number of independently locked shards. 1 (the default) keeps a single
  /// replacement domain; higher values reduce lock contention under
  /// concurrent load at the cost of per-shard (approximate) replacement
  /// and budget split. Byte/entry budgets below are totals, divided evenly
  /// across shards.
  size_t shards = 1;

  /// Replacement policy — and, with it, the read-path locking discipline.
  /// kClock (the default) serves memory hits under a *shared* shard lock
  /// (a hit sets an atomic reference bit and loads an atomic expiry
  /// deadline; eviction sweeps a clock hand on Put/budget pressure under
  /// the exclusive lock). kLru restores exact LRU: every Get splices the
  /// recency list and therefore takes the exclusive lock, serializing hits
  /// with fills and invalidations — keep it for differential tests and
  /// workloads that need exact recency.
  EvictionPolicy eviction = EvictionPolicy::kClock;

  size_t memory_budget_bytes = 256 * 1024 * 1024;
  size_t memory_max_entries = SIZE_MAX;

  std::string disk_directory;  // required for kDisk/kHybrid
  size_t disk_budget_bytes = 1024 * 1024 * 1024;
  Deserializer deserializer;   // required for kDisk/kHybrid

  std::string log_path;  // empty = logging disabled
  LogFlushPolicy log_policy = LogFlushPolicy::kBuffered;
  size_t log_buffer_bytes = 64 * 1024;

  /// Enable the containment-aware semantic lookup tier (docs/SEMANTIC.md):
  /// on an exact-fingerprint miss, the middleware engine probes a
  /// per-table containment index for a cached *superset* result and, when
  /// one subsumes the incoming predicate, answers by filtering the cached
  /// rows instead of scanning the base table. Consumed by
  /// middleware::CachedQueryEngine — the cache itself only ever stores and
  /// serves exact fingerprints. Disable for exact-only baselines.
  bool semantic_lookup = true;

  /// Injectable clock (tests freeze it). Defaults to steady_clock::now.
  TimeSource now;

  /// Injectable wall clock, microseconds since the Unix epoch; spill files
  /// persist absolute expiration through it so TTLs survive restarts.
  /// Defaults to system_clock. Tests overriding `now` should override this
  /// coherently.
  std::function<int64_t()> wall_now_micros;
};

class GpsCache {
 public:
  explicit GpsCache(GpsCacheConfig config);

  GpsCache(const GpsCache&) = delete;
  GpsCache& operator=(const GpsCache&) = delete;

  /// Admission guard for the four-argument Put overload. Evaluated under
  /// the owning shard's exclusive lock, atomically with the store becoming
  /// visible: any Invalidate() of the same key serializes entirely before
  /// or after the {guard, store} pair, and shared-lock readers can only
  /// observe the entry after the exclusive section completes. The guard
  /// must be cheap and lock-free — it must not call back into this cache
  /// or acquire the DUP engine lock (UpdateEpochs::Snapshot::Current()
  /// qualifies).
  using AdmitGuard = std::function<bool()>;

  /// Add or replace an object, optionally with a time-to-live after which
  /// it expires. Returns false if the object cannot fit at all.
  bool Put(const std::string& key, CacheValuePtr value,
           std::optional<Duration> ttl = std::nullopt);

  /// Guarded Put: `admit` is evaluated under the exclusive shard lock
  /// immediately before the store; when it returns false the value is not
  /// stored (and the rejection is counted as CacheStats::admit_rejects).
  /// This is the publication step of the epoch-validation protocol
  /// (docs/CONCURRENCY.md).
  ///
  /// `durable_tag` is an opaque annotation persisted with the entry in
  /// disk/hybrid modes (it rides along on spills and recovery); the
  /// middleware stores the statement's canonical SQL + parameters so DUP
  /// registration can be rebuilt after a restart (docs/PERSISTENCE.md).
  bool Put(const std::string& key, CacheValuePtr value, std::optional<Duration> ttl,
           const AdmitGuard& admit, std::string durable_tag = {});

  /// Sequenced admission (docs/CLUSTER.md): the decider distinguishes *why*
  /// a fill is refused so the cache can attribute the rejection — a stale
  /// epoch snapshot (the local protocol) vs. the CDC sequence gate (a
  /// remote fill that observed a sequence older than the invalidations
  /// already applied on this node). Both reject causes count as
  /// admit_rejects; kRejectSequence additionally counts seq_admit_rejects.
  enum class AdmitDecision { kAdmit, kRejectStale, kRejectSequence };

  /// Same locking contract as AdmitGuard: evaluated under the exclusive
  /// shard lock, must be cheap and lock-free (Snapshot::Current() and
  /// CdcSequenceGate::Admits() both qualify).
  using AdmitDecider = std::function<AdmitDecision()>;

  /// Guarded Put with reject-cause attribution; otherwise identical to the
  /// AdmitGuard overload.
  bool Put(const std::string& key, CacheValuePtr value, std::optional<Duration> ttl,
           const AdmitDecider& admit, std::string durable_tag);

  /// Lookup. Expired entries count as misses. Under kClock, a memory hit
  /// (and any clean miss) is served under the *shared* shard lock — an
  /// expired entry is served-as-miss lazily and left for the next writer's
  /// sweep to reap; disk hits, promotions and metadata repair upgrade to
  /// the exclusive lock. Under kLru the historical semantics hold: the
  /// exclusive lock, eager expiry removal, LRU refresh. In hybrid mode a
  /// disk hit is promoted back into memory.
  CacheValuePtr Get(const std::string& key);

  /// True without disturbing replacement order or statistics. Always runs
  /// under the shared shard lock.
  bool Contains(const std::string& key);

  /// Remove one object; returns true if it was present.
  bool Invalidate(const std::string& key);

  /// Remove many objects with one shard-lock acquisition per *touched
  /// shard* instead of one per key: keys are grouped by shard first, then
  /// each group is removed under a single exclusive lock. This is the
  /// batched invalidation path of the DUP engine (one statement → one
  /// batch). Returns how many keys were present. Removal listeners run
  /// outside all locks, after every group has been processed.
  size_t InvalidateBatch(const std::vector<std::string>& keys);

  /// Remove everything (Policy I's reaction to any update). Shards are
  /// cleared one at a time; concurrent Puts to already-cleared shards may
  /// survive (the DUP epoch guard prevents stale survivors on the
  /// middleware path).
  void Clear();

  /// Remove entries whose expiration time has passed. Called internally on
  /// every Put (for the touched shard); exposed for idle-time sweeps
  /// (sweeps every shard). Under kClock this is also what reaps entries
  /// the shared-lock read path already served-as-miss.
  size_t ExpireDue();

  /// Observer invoked whenever an object leaves the cache entirely. Called
  /// *outside* all shard locks (so it may re-enter the cache), on the
  /// thread that triggered the removal.
  using RemovalListener = std::function<void(const std::string& key, RemovalCause cause)>;
  void SetRemovalListener(RemovalListener listener);

  /// Aggregated over all shards (each shard snapshotted under its lock;
  /// the total is not one instantaneous cut across shards). Per-hit
  /// counters come from striped relaxed atomics — exact once the reading
  /// threads are quiescent.
  CacheStats stats() const;
  size_t entry_count();
  size_t memory_bytes();
  size_t disk_bytes();

  size_t shard_count() const { return shards_.size(); }
  CacheStats shard_stats(size_t shard) const;
  size_t shard_entry_count(size_t shard) const;

  /// Flush the transaction log buffer, if logging is enabled.
  void FlushLog();
  const TransactionLog* log() const { return log_.get(); }

  /// One disk entry restored by recover_on_open, with the durable tag its
  /// writer persisted. The value itself is served lazily through Get.
  struct RecoveredEntry {
    std::string key;
    std::string durable_tag;
  };

  /// Entries restored at construction (empty unless recover_on_open).
  /// Stable for the cache's lifetime; the entries themselves may have been
  /// invalidated or evicted since.
  const std::vector<RecoveredEntry>& recovered_entries() const { return recovered_entries_; }

 private:
  /// Sentinel deadline for "no TTL" (steady-clock nanoseconds).
  static constexpr int64_t kNoDeadlineNs = std::numeric_limits<int64_t>::max();

  struct ExpiryItem {
    TimePoint when;
    std::string key;
    uint64_t generation;
    bool operator>(const ExpiryItem& other) const { return when > other.when; }
  };

  struct Meta {
    uint64_t generation = 0;
    /// Expiry deadline in steady-clock nanoseconds (kNoDeadlineNs = no
    /// TTL). Atomic so the shared-lock read path can check freshness with
    /// one relaxed load; writers store it under the exclusive lock.
    std::atomic<int64_t> expires_at_ns{kNoDeadlineNs};
    /// Persisted with the entry on disk spills (see Put). Kept here so a
    /// memory-resident entry carries its tag to a later spill.
    std::string durable_tag;
  };

  /// One rw-lock-striped slice of the cache: its own storage levels,
  /// expiry heap and statistics. `mutex` guards everything except the
  /// per-hit counters and the atomics noted above: shared holders may read
  /// meta/memory and bump atomics; every mutation requires exclusive.
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unique_ptr<MemoryStore> memory;
    std::unique_ptr<DiskStore> disk;
    std::unordered_map<std::string, Meta> meta;
    std::priority_queue<ExpiryItem, std::vector<ExpiryItem>, std::greater<ExpiryItem>>
        expiry_heap;
    uint64_t generation_counter = 0;
    /// Writer-side counters (puts, evictions, ...), exclusive lock only.
    CacheStats stats;
    /// Per-hit counters (lookups/hits/misses/...), striped relaxed atomics
    /// bumped without the shard lock; folded into stats() on read.
    HitPathCounters hit_counters;
  };

  Shard& ShardFor(const std::string& key);

  void Log(std::string_view op, std::string_view key, std::string_view detail = {});
  int64_t WallNowMicros() const { return wall_now_(); }
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now_().time_since_epoch())
        .count();
  }
  static int64_t ToNs(TimePoint tp) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch()).count();
  }
  bool DeadlinePassed(const Meta& meta) const {
    const int64_t deadline = meta.expires_at_ns.load(std::memory_order_relaxed);
    return deadline != kNoDeadlineNs && deadline <= NowNs();
  }
  /// Wall-clock expiration for a steady-clock deadline (kNoExpiry if none).
  int64_t WallExpiry(int64_t deadline_ns) const;
  /// Install recovered disk entries into `shard`'s metadata (constructor
  /// only; no locking needed yet).
  void AdoptRecovered(Shard& shard);
  /// The historical lookup: exclusive shard lock, eager expiry, disk read
  /// + hybrid promotion, metadata repair. The whole Get under kLru; the
  /// slow path under kClock.
  CacheValuePtr GetExclusive(const std::string& key, Shard& shard);
  // All *Locked methods require the shard's mutex held exclusively.
  CacheStats ShardStatsLocked(const Shard& shard) const;
  bool RemoveLocked(Shard& shard, const std::string& key, RemovalCause cause,
                    std::vector<std::pair<std::string, RemovalCause>>& removed);
  size_t ExpireDueLocked(Shard& shard,
                         std::vector<std::pair<std::string, RemovalCause>>& removed);
  void HandleMemoryEvictions(Shard& shard, std::vector<MemoryStore::Evicted>& evicted,
                             std::vector<std::pair<std::string, RemovalCause>>& removed);
  void NotifyRemovals(const std::vector<std::pair<std::string, RemovalCause>>& removed);

  GpsCacheConfig config_;
  TimeSource now_;
  std::function<int64_t()> wall_now_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<RecoveredEntry> recovered_entries_;
  std::unique_ptr<TransactionLog> log_;  // internally synchronized

  mutable std::mutex listener_mutex_;
  RemovalListener removal_listener_;
};

}  // namespace qc::cache
