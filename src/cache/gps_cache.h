// The General-Purpose Software cache (GPS cache) of paper §3.
//
// A pluggable, thread-safe object cache with
//   * memory, disk, or hybrid (memory + disk spill) storage,
//   * LRU replacement under byte/entry budgets,
//   * an efficient expiration-time mechanism (lazy min-heap),
//   * optional transaction logging with configurable flush policy,
//   * statistics, and
//   * a removal listener so higher layers (the DUP engine) can keep the
//     ODG in sync with what is actually cached.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/disk_store.h"
#include "cache/memory_store.h"
#include "cache/stats.h"
#include "cache/txlog.h"
#include "cache/value.h"

namespace qc::cache {

using TimePoint = std::chrono::steady_clock::time_point;
using Duration = std::chrono::steady_clock::duration;
using TimeSource = std::function<TimePoint()>;

enum class CacheMode { kMemory, kDisk, kHybrid };

enum class RemovalCause {
  kInvalidated,  // explicit Invalidate()
  kEvicted,      // LRU budget pressure removed it from every level
  kExpired,      // expiration time passed
  kCleared,      // whole-cache Clear()
  kReplaced,     // Put() over an existing key
};

const char* RemovalCauseName(RemovalCause cause);

struct GpsCacheConfig {
  CacheMode mode = CacheMode::kMemory;

  size_t memory_budget_bytes = 256 * 1024 * 1024;
  size_t memory_max_entries = SIZE_MAX;

  std::string disk_directory;  // required for kDisk/kHybrid
  size_t disk_budget_bytes = 1024 * 1024 * 1024;
  Deserializer deserializer;   // required for kDisk/kHybrid

  std::string log_path;  // empty = logging disabled
  LogFlushPolicy log_policy = LogFlushPolicy::kBuffered;
  size_t log_buffer_bytes = 64 * 1024;

  /// Injectable clock (tests freeze it). Defaults to steady_clock::now.
  TimeSource now;
};

class GpsCache {
 public:
  explicit GpsCache(GpsCacheConfig config);

  GpsCache(const GpsCache&) = delete;
  GpsCache& operator=(const GpsCache&) = delete;

  /// Add or replace an object, optionally with a time-to-live after which
  /// it expires. Returns false if the object cannot fit at all.
  bool Put(const std::string& key, CacheValuePtr value,
           std::optional<Duration> ttl = std::nullopt);

  /// Lookup. Expired entries count as misses (and are removed). In hybrid
  /// mode a disk hit is promoted back into memory.
  CacheValuePtr Get(const std::string& key);

  /// True without disturbing LRU order or statistics.
  bool Contains(const std::string& key);

  /// Remove one object; returns true if it was present.
  bool Invalidate(const std::string& key);

  /// Remove everything (Policy I's reaction to any update).
  void Clear();

  /// Remove entries whose expiration time has passed. Called internally on
  /// every Put/Get; exposed for idle-time sweeps.
  size_t ExpireDue();

  /// Observer invoked (outside internal locks' critical path best-effort;
  /// see .cc) whenever an object leaves the cache entirely.
  using RemovalListener = std::function<void(const std::string& key, RemovalCause cause)>;
  void SetRemovalListener(RemovalListener listener);

  CacheStats stats() const;
  size_t entry_count();
  size_t memory_bytes();
  size_t disk_bytes();

  /// Flush the transaction log buffer, if logging is enabled.
  void FlushLog();
  const TransactionLog* log() const { return log_.get(); }

 private:
  struct ExpiryItem {
    TimePoint when;
    std::string key;
    uint64_t generation;
    bool operator>(const ExpiryItem& other) const { return when > other.when; }
  };

  struct Meta {
    uint64_t generation = 0;
    std::optional<TimePoint> expires_at;
  };

  void Log(std::string_view op, std::string_view key, std::string_view detail = {});
  // All *Locked methods require mutex_ held.
  bool RemoveLocked(const std::string& key, RemovalCause cause,
                    std::vector<std::pair<std::string, RemovalCause>>& removed);
  size_t ExpireDueLocked(std::vector<std::pair<std::string, RemovalCause>>& removed);
  void HandleMemoryEvictions(std::vector<MemoryStore::Evicted>& evicted,
                             std::vector<std::pair<std::string, RemovalCause>>& removed);
  void NotifyRemovals(const std::vector<std::pair<std::string, RemovalCause>>& removed);

  GpsCacheConfig config_;
  TimeSource now_;
  std::unique_ptr<MemoryStore> memory_;
  std::unique_ptr<DiskStore> disk_;
  std::unique_ptr<TransactionLog> log_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Meta> meta_;
  std::priority_queue<ExpiryItem, std::vector<ExpiryItem>, std::greater<ExpiryItem>> expiry_heap_;
  uint64_t generation_counter_ = 0;
  CacheStats stats_;
  RemovalListener removal_listener_;
};

}  // namespace qc::cache
