#include "cache/memory_store.h"

namespace qc::cache {

bool MemoryStore::Put(const std::string& key, CacheValuePtr value, std::vector<Evicted>* evicted) {
  const size_t bytes = value->ByteSize();
  if (bytes > max_bytes_) return false;

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    it->second.value = std::move(value);
    it->second.bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  } else {
    lru_.push_front(key);
    Entry entry;
    entry.value = std::move(value);
    entry.bytes = bytes;
    entry.lru_pos = lru_.begin();
    entries_.emplace(key, std::move(entry));
    bytes_ += bytes;
  }
  EvictIfNeeded(evicted);
  return true;
}

CacheValuePtr MemoryStore::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.value;
}

CacheValuePtr MemoryStore::Peek(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.value;
}

bool MemoryStore::Erase(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  return true;
}

void MemoryStore::Clear() {
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

std::vector<std::string> MemoryStore::KeysByRecency() const {
  return {lru_.begin(), lru_.end()};
}

void MemoryStore::EvictIfNeeded(std::vector<Evicted>* evicted) {
  while ((bytes_ > max_bytes_ || entries_.size() > max_entries_) && entries_.size() > 1) {
    const std::string victim_key = lru_.back();
    auto it = entries_.find(victim_key);
    if (evicted) evicted->push_back({victim_key, it->second.value});
    bytes_ -= it->second.bytes;
    lru_.pop_back();
    entries_.erase(it);
  }
}

}  // namespace qc::cache
