#include "cache/memory_store.h"

namespace qc::cache {

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kClock: return "clock";
  }
  return "?";
}

bool MemoryStore::Put(const std::string& key, CacheValuePtr value, std::vector<Evicted>* evicted) {
  const size_t bytes = value->ByteSize();
  if (bytes > max_bytes_) return false;

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    it->second.value = std::move(value);
    it->second.bytes = bytes;
    bytes_ += bytes;
    if (policy_ == EvictionPolicy::kLru) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    } else {
      // A replace is a touch: give the fresh value a second chance.
      it->second.referenced.store(1, std::memory_order_relaxed);
    }
  } else {
    // Entry holds an atomic (non-movable): construct in place, then fill.
    Entry& entry = entries_[key];
    entry.value = std::move(value);
    entry.bytes = bytes;
    bytes_ += bytes;
    if (policy_ == EvictionPolicy::kLru) {
      lru_.push_front(key);
      entry.lru_pos = lru_.begin();
    } else {
      // New entries start unreferenced: a one-shot scan must not displace
      // the resident working set (their first Get sets the bit).
      entry.slot = AllocSlot(key);
      entry.referenced.store(0, std::memory_order_relaxed);
    }
  }
  if (policy_ == EvictionPolicy::kLru) {
    EvictLru(evicted);
  } else {
    EvictClock(key, evicted);
  }
  return true;
}

CacheValuePtr MemoryStore::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (policy_ == EvictionPolicy::kLru) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  } else {
    it->second.referenced.store(1, std::memory_order_relaxed);
  }
  return it->second.value;
}

CacheValuePtr MemoryStore::Peek(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.value;
}

bool MemoryStore::Erase(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  bytes_ -= it->second.bytes;
  if (policy_ == EvictionPolicy::kLru) {
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  } else {
    RemoveClockEntry(it);
  }
  return true;
}

void MemoryStore::Clear() {
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  ring_.clear();
  free_slots_.clear();
  hand_ = 0;
}

std::vector<std::string> MemoryStore::KeysByRecency() const {
  if (policy_ == EvictionPolicy::kLru) return {lru_.begin(), lru_.end()};
  std::vector<std::string> referenced;
  std::vector<std::string> unreferenced;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const size_t slot = (hand_ + i) % ring_.size();
    auto it = entries_.find(ring_[slot]);
    if (it == entries_.end() || it->second.slot != slot) continue;  // stale
    (it->second.referenced.load(std::memory_order_relaxed) ? referenced : unreferenced)
        .push_back(it->first);
  }
  referenced.insert(referenced.end(), unreferenced.begin(), unreferenced.end());
  return referenced;
}

void MemoryStore::EvictLru(std::vector<Evicted>* evicted) {
  while (OverBudget() && entries_.size() > 1) {
    const std::string victim_key = lru_.back();
    auto it = entries_.find(victim_key);
    if (evicted) evicted->push_back({victim_key, it->second.value});
    bytes_ -= it->second.bytes;
    lru_.pop_back();
    entries_.erase(it);
  }
}

size_t MemoryStore::AllocSlot(const std::string& key) {
  if (!free_slots_.empty()) {
    const size_t slot = free_slots_.back();
    free_slots_.pop_back();
    ring_[slot] = key;
    return slot;
  }
  ring_.push_back(key);
  return ring_.size() - 1;
}

void MemoryStore::RemoveClockEntry(EntryMap::iterator it) {
  const size_t slot = it->second.slot;
  ring_[slot].clear();  // stale until recycled
  free_slots_.push_back(slot);
  entries_.erase(it);
}

void MemoryStore::EvictClock(const std::string& protect, std::vector<Evicted>* evicted) {
  while (OverBudget() && entries_.size() > 1) {
    // The sweep runs under the owner's exclusive lock, so no reference bit
    // can be re-set mid-scan: one rotation clears every live bit, and a
    // second is guaranteed to find an unreferenced, unprotected victim
    // (entries_.size() > 1 and at most one entry is protected). The bound
    // is a safety net, not an expected exit.
    bool victimized = false;
    for (size_t scanned = 0; scanned < 2 * ring_.size() + 1 && !victimized; ++scanned) {
      const size_t slot = hand_;
      hand_ = (hand_ + 1) % ring_.size();
      auto it = entries_.find(ring_[slot]);
      if (it == entries_.end() || it->second.slot != slot) continue;  // stale slot
      if (it->first == protect) continue;  // never the key just inserted
      if (it->second.referenced.load(std::memory_order_relaxed) != 0) {
        it->second.referenced.store(0, std::memory_order_relaxed);  // second chance
        continue;
      }
      if (evicted) evicted->push_back({it->first, it->second.value});
      bytes_ -= it->second.bytes;
      RemoveClockEntry(it);
      victimized = true;
    }
    if (!victimized) return;  // only the protected entry remains evictable
  }
}

}  // namespace qc::cache
