#include "cache/semantic_index.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "odg/annotation.h"
#include "sql/evaluator.h"
#include "sql/exec_common.h"
#include "sql/planner.h"
#include "storage/table.h"

namespace qc::cache {

namespace {

using dup::ValueSet;
using sql::Expr;

/// A ⊆ B over (values ∪ {NULL}): nothing of A survives outside B.
bool SubsetOf(const ValueSet& a, const ValueSet& b) {
  return ValueSet::Intersect(a, ValueSet::Complement(b)).empty();
}

/// Collect every bound base-column index referenced anywhere in `e`.
/// Clears `ok` on an unbound or non-slot-0 column (defensive: the binder
/// fills these for every single-table statement we are given).
void CollectColumns(const Expr& e, std::vector<uint32_t>& out, bool& ok) {
  if (e.kind == Expr::Kind::kColumn) {
    if (e.table_slot != 0 || e.column_index < 0) {
      ok = false;
      return;
    }
    out.push_back(static_cast<uint32_t>(e.column_index));
    return;
  }
  for (const sql::ExprPtr& child : e.children) CollectColumns(*child, out, ok);
}

sql::BinaryOp MirrorOp(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kLt: return sql::BinaryOp::kGt;
    case sql::BinaryOp::kLe: return sql::BinaryOp::kGe;
    case sql::BinaryOp::kGt: return sql::BinaryOp::kLt;
    case sql::BinaryOp::kGe: return sql::BinaryOp::kLe;
    default: return op;  // = and <> are symmetric
  }
}

/// Accept `e` as the column side of an atom, enforcing that every atom in
/// one conjunct names the same column (`column` starts at -1).
bool LeafColumn(const Expr& e, int32_t& column) {
  if (e.kind != Expr::Kind::kColumn || e.table_slot != 0 || e.column_index < 0) return false;
  if (column >= 0 && column != e.column_index) return false;
  column = e.column_index;
  return true;
}

bool OperandValue(const Expr& e, const std::vector<Value>& params, Value& out) {
  std::optional<Value> v = sql::ConstValue(e, params);
  if (!v) return false;
  out = std::move(*v);
  return true;
}

/// Build the single-column predicate of one top-level conjunct, parameters
/// substituted and NOTs folded into atom polarity (negation normal form, as
/// in dup/extractor.cc — but *strict*: any subtree the interval algebra
/// cannot express exactly rejects the conjunct instead of relaxing it).
bool BuildColumnPred(const Expr& e, bool positive, const std::vector<Value>& params,
                     int32_t& column, odg::ColumnPredicate& out) {
  using Kind = Expr::Kind;
  switch (e.kind) {
    case Kind::kUnaryNot:
      return BuildColumnPred(*e.children[0], !positive, params, column, out);
    case Kind::kBinary: {
      if (e.op == sql::BinaryOp::kAnd || e.op == sql::BinaryOp::kOr) {
        odg::ColumnPredicate lhs, rhs;
        if (!BuildColumnPred(*e.children[0], positive, params, column, lhs)) return false;
        if (!BuildColumnPred(*e.children[1], positive, params, column, rhs)) return false;
        // De Morgan: a negated AND subtree becomes an OR of negated atoms.
        const bool is_and = (e.op == sql::BinaryOp::kAnd) == positive;
        std::vector<odg::ColumnPredicate> cs;
        cs.push_back(std::move(lhs));
        cs.push_back(std::move(rhs));
        out = is_and ? odg::ColumnPredicate::And(std::move(cs))
                     : odg::ColumnPredicate::Or(std::move(cs));
        return true;
      }
      if (!sql::IsComparison(e.op)) return false;
      const Expr& l = *e.children[0];
      const Expr& r = *e.children[1];
      const bool l_col = l.kind == Kind::kColumn;
      const bool r_col = r.kind == Kind::kColumn;
      if (l_col == r_col) return false;  // column-vs-column / const-vs-const
      odg::Atom atom;
      atom.kind = odg::Atom::Kind::kCmp;
      if (!LeafColumn(l_col ? l : r, column)) return false;
      if (!OperandValue(l_col ? r : l, params, atom.a)) return false;
      atom.cmp_op = l_col ? e.op : MirrorOp(e.op);
      atom.negated = !positive;
      out = odg::ColumnPredicate::MakeAtom(std::move(atom));
      return true;
    }
    case Kind::kBetween: {
      odg::Atom atom;
      atom.kind = odg::Atom::Kind::kBetween;
      if (!LeafColumn(*e.children[0], column)) return false;
      if (!OperandValue(*e.children[1], params, atom.a)) return false;
      if (!OperandValue(*e.children[2], params, atom.b)) return false;
      atom.negated = positive ? e.negated : !e.negated;
      out = odg::ColumnPredicate::MakeAtom(std::move(atom));
      return true;
    }
    case Kind::kIn: {
      odg::Atom atom;
      atom.kind = odg::Atom::Kind::kIn;
      if (!LeafColumn(*e.children[0], column)) return false;
      atom.set.reserve(e.children.size() - 1);
      for (size_t i = 1; i < e.children.size(); ++i) {
        Value v;
        if (!OperandValue(*e.children[i], params, v)) return false;
        atom.set.push_back(std::move(v));
      }
      atom.negated = positive ? e.negated : !e.negated;
      out = odg::ColumnPredicate::MakeAtom(std::move(atom));
      return true;
    }
    case Kind::kLike: {
      odg::Atom atom;
      atom.kind = odg::Atom::Kind::kLike;
      if (!LeafColumn(*e.children[0], column)) return false;
      if (!OperandValue(*e.children[1], params, atom.a)) return false;
      atom.negated = positive ? e.negated : !e.negated;
      // Wildcard patterns make CompileAcceptSet return nullopt below.
      out = odg::ColumnPredicate::MakeAtom(std::move(atom));
      return true;
    }
    case Kind::kIsNull: {
      odg::Atom atom;
      atom.kind = odg::Atom::Kind::kIsNull;
      if (!LeafColumn(*e.children[0], column)) return false;
      atom.negated = positive ? e.negated : !e.negated;
      out = odg::ColumnPredicate::MakeAtom(std::move(atom));
      return true;
    }
    default:
      return false;  // a bare literal/param/column is not a predicate shape
  }
}

}  // namespace

std::optional<SemanticIndex::Shape> SemanticIndex::Analyze(const sql::BoundQuery& query,
                                                           const std::vector<Value>& params) {
  const sql::SelectStmt& stmt = query.stmt();
  if (stmt.from.size() != 1) return std::nullopt;

  Shape shape;
  shape.table = &query.table(0);
  shape.table_name = ToUpper(shape.table->name());
  const size_t arity = shape.table->schema().size();

  bool ok = true;
  bool star = false;
  bool plain = true;  // every select item a plain bound column
  std::vector<uint32_t> referenced;
  shape.result_pos.assign(arity, -1);

  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const sql::SelectItem& item = stmt.items[i];
    switch (item.kind) {
      case sql::SelectItem::Kind::kStar:
        star = true;
        shape.references_all = true;
        break;
      case sql::SelectItem::Kind::kColumn: {
        CollectColumns(*item.expr, referenced, ok);
        if (item.expr->kind == Expr::Kind::kColumn && item.expr->table_slot == 0 &&
            item.expr->column_index >= 0) {
          const auto idx = static_cast<uint32_t>(item.expr->column_index);
          if (shape.result_pos[idx] < 0) shape.result_pos[idx] = static_cast<int32_t>(i);
          shape.projected.push_back(idx);
        } else {
          plain = false;
        }
        break;
      }
      case sql::SelectItem::Kind::kScalar:
        plain = false;
        CollectColumns(*item.expr, referenced, ok);
        break;
      case sql::SelectItem::Kind::kAggregate:
        plain = false;
        if (item.expr) CollectColumns(*item.expr, referenced, ok);
        break;
    }
  }
  for (const sql::ExprPtr& g : stmt.group_by) CollectColumns(*g, referenced, ok);
  for (const sql::OrderKey& o : stmt.order_by) CollectColumns(*o.column, referenced, ok);
  if (stmt.where) CollectColumns(*stmt.where, referenced, ok);
  if (!ok) return std::nullopt;

  if (stmt.where) {
    std::vector<const Expr*> conjuncts;
    sql::exec::SplitConjuncts(*stmt.where, conjuncts);
    std::map<uint32_t, ValueSet> sets;  // ordered: constraints come out sorted
    for (const Expr* conjunct : conjuncts) {
      int32_t column = -1;
      odg::ColumnPredicate pred;
      if (!BuildColumnPred(*conjunct, /*positive=*/true, params, column, pred)) {
        return std::nullopt;
      }
      if (column < 0) return std::nullopt;
      std::optional<ValueSet> set = dup::CompileAcceptSet(pred);
      if (!set) return std::nullopt;  // wildcard LIKE: not exactly expressible
      const auto col = static_cast<uint32_t>(column);
      auto it = sets.find(col);
      if (it == sets.end()) {
        sets.emplace(col, std::move(*set));
      } else {
        it->second = ValueSet::Intersect(it->second, *set);
      }
    }
    for (auto& [col, set] : sets) {
      if (!set.IsUniverse()) shape.constraints.emplace_back(col, std::move(set));
    }
  }

  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()), referenced.end());
  shape.referenced = std::move(referenced);

  shape.star = star && stmt.items.size() == 1;
  shape.source_eligible =
      stmt.group_by.empty() && !stmt.limit && (shape.star || (plain && !star));
  if (shape.star) {
    shape.projected.resize(arity);
    for (uint32_t c = 0; c < arity; ++c) {
      shape.projected[c] = c;
      shape.result_pos[c] = static_cast<int32_t>(c);
    }
  } else {
    std::sort(shape.projected.begin(), shape.projected.end());
    shape.projected.erase(std::unique(shape.projected.begin(), shape.projected.end()),
                          shape.projected.end());
  }
  return shape;
}

const storage::Table* SemanticIndex::SourceEntry::EnsureMirror() {
  std::lock_guard<std::mutex> lock(mirror_mu);
  if (!mirror) {
    std::vector<storage::ColumnDef> cols = base->schema().columns();
    // NULL fills the unprojected columns, so every mirror column accepts it
    // (projection coverage guarantees those cells are never read).
    for (storage::ColumnDef& c : cols) c.nullable = true;
    auto table = std::make_shared<storage::Table>(base->name(), storage::Schema(std::move(cols)));
    const size_t arity = base->schema().size();
    storage::Row row(arity);
    for (const storage::Row& src : result->rows()) {
      for (size_t c = 0; c < arity; ++c) {
        const int32_t pos = result_pos[c];
        row[c] = pos >= 0 ? src[static_cast<size_t>(pos)] : Value::Null();
      }
      table->Insert(row);
    }
    mirror = std::move(table);  // immutable from here on; scanned lock-free
  }
  return mirror.get();
}

void SemanticIndex::TryRegister(const std::string& key, const sql::BoundQuery& query,
                                const std::vector<Value>& params, sql::ResultPtr result,
                                const dup::UpdateEpochs::Snapshot& snapshot,
                                uint64_t observed_seq) {
  if (!result) return;
  std::optional<Shape> shape = Analyze(query, params);
  if (!shape || !shape->source_eligible) return;
  // Defensive: the result's width must match the analyzed projection, or
  // the mirror build would index out of range.
  const size_t expect = shape->star ? shape->table->schema().size() : query.stmt().items.size();
  if (result->columns().size() != expect) return;

  auto entry = std::make_shared<SourceEntry>();
  entry->key = key;
  entry->base = shape->table;
  entry->constraints = std::move(shape->constraints);
  entry->star = shape->star;
  entry->projected = std::move(shape->projected);
  entry->result_pos = std::move(shape->result_pos);
  entry->result = std::move(result);
  entry->snapshot = snapshot;
  entry->observed_seq = observed_seq;

  std::lock_guard<std::mutex> lock(mu_);
  // Atomic with the insert: if an update already stamped one of this
  // statement's epoch slots, the cache entry this registration mirrors was
  // (or is being) invalidated, and the removal listener may have fired
  // before we got here — inserting now would create a stale entry nothing
  // ever removes. Refusing is always safe; the next cold read re-registers.
  if (!snapshot.Current()) return;
  RemoveLocked(key);
  std::vector<std::shared_ptr<SourceEntry>>& vec = by_table_[shape->table_name];
  if (vec.size() >= kMaxSourcesPerTable) {
    // Evict by coverage, not insertion order: a wide superset answers every
    // probe its derived sub-results can and more, so dropping the entry
    // with the fewest cached rows loses the least. FIFO here would rotate
    // the superset out as soon as its own derived admissions fill the
    // table's quota. If the candidate itself has the least coverage, keep
    // the index as is (dropping a candidate is always safe — the exact
    // tier still serves its key).
    auto smallest = std::min_element(vec.begin(), vec.end(), [](const auto& a, const auto& b) {
      return a->result->rows().size() < b->result->rows().size();
    });
    if (entry->result->rows().size() <= (*smallest)->result->rows().size()) return;
    table_of_key_.erase((*smallest)->key);
    vec.erase(smallest);
  }
  table_of_key_[key] = shape->table_name;
  vec.push_back(std::move(entry));
}

void SemanticIndex::Remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  RemoveLocked(key);
}

void SemanticIndex::RemoveLocked(const std::string& key) {
  auto it = table_of_key_.find(key);
  if (it == table_of_key_.end()) return;
  auto vt = by_table_.find(it->second);
  if (vt != by_table_.end()) {
    std::vector<std::shared_ptr<SourceEntry>>& vec = vt->second;
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [&](const std::shared_ptr<SourceEntry>& e) { return e->key == key; }),
              vec.end());
    if (vec.empty()) by_table_.erase(vt);
  }
  table_of_key_.erase(it);
}

void SemanticIndex::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  by_table_.clear();
  table_of_key_.clear();
}

std::shared_ptr<SemanticIndex::SourceEntry> SemanticIndex::FindSuperset(const Shape& shape) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_table_.find(shape.table_name);
  if (it == by_table_.end()) return nullptr;

  std::shared_ptr<SourceEntry> best;
  size_t best_rows = 0;
  uint64_t projection_rejects = 0;
  for (const std::shared_ptr<SourceEntry>& entry : it->second) {
    // Containment: for every column the source constrains, the incoming
    // query must constrain it to a subset. Columns the source leaves free
    // are universal and contain anything.
    bool contained = true;
    for (const auto& [col, source_set] : entry->constraints) {
      const auto mine = std::lower_bound(
          shape.constraints.begin(), shape.constraints.end(), col,
          [](const std::pair<uint32_t, ValueSet>& p, uint32_t c) { return p.first < c; });
      if (mine == shape.constraints.end() || mine->first != col ||
          !SubsetOf(mine->second, source_set)) {
        contained = false;
        break;
      }
    }
    if (!contained) continue;
    const bool covered =
        entry->star || (!shape.references_all &&
                        std::includes(entry->projected.begin(), entry->projected.end(),
                                      shape.referenced.begin(), shape.referenced.end()));
    if (!covered) {
      ++projection_rejects;  // would have answered but for the projection
      continue;
    }
    const size_t rows = entry->result->rows().size();
    if (!best || rows < best_rows) {
      best = entry;
      best_rows = rows;
    }
  }
  if (projection_rejects) {
    rejects_projection_.fetch_add(projection_rejects, std::memory_order_relaxed);
  }
  return best;
}

sql::ResultSet SemanticIndex::ExecuteResidual(SourceEntry& entry, const sql::BoundQuery& query,
                                              const std::vector<Value>& params) {
  const storage::Table* mirror = entry.EnsureMirror();
  sql::BoundQuery rebound(query.stmt().Clone(), {mirror}, query.order_outputs());
  return sql::Execute(rebound, params);
}

size_t SemanticIndex::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_of_key_.size();
}

void SemanticIndex::FoldInto(CacheStats& stats) const {
  stats.semantic_probes += probes_.load(std::memory_order_relaxed);
  stats.semantic_hits += hits_.load(std::memory_order_relaxed);
  stats.semantic_rejects_shape += rejects_shape_.load(std::memory_order_relaxed);
  stats.semantic_rejects_projection += rejects_projection_.load(std::memory_order_relaxed);
  stats.semantic_rejects_epoch += rejects_epoch_.load(std::memory_order_relaxed);
  stats.residual_filter_ns += residual_filter_ns_.load(std::memory_order_relaxed);
}

}  // namespace qc::cache
