#include "cache/txlog.h"

#include "common/error.h"

namespace qc::cache {

namespace {

const char* PolicyToken(LogFlushPolicy policy) {
  switch (policy) {
    case LogFlushPolicy::kEveryRecord: return "every-record";
    case LogFlushPolicy::kBuffered: return "buffered";
    case LogFlushPolicy::kManual: return "manual";
  }
  return "?";
}

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TransactionLog::TransactionLog(const std::string& path, LogFlushPolicy policy,
                               size_t buffer_threshold_bytes)
    : policy_(policy), buffer_threshold_(buffer_threshold_bytes) {
  file_ = std::fopen(path.c_str(), "a");
  if (!file_) throw CacheError("cannot open transaction log: " + path);
  // Session header: marks this process's records in a log that may already
  // hold earlier sessions. Buffered like any record (it shares the fate of
  // the session's tail under the configured flush policy) and excluded
  // from records_written().
  std::lock_guard<std::mutex> lock(mutex_);
  AppendLocked("session", "open", std::string("v2 policy=") + PolicyToken(policy_));
}

TransactionLog::~TransactionLog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AppendLocked("session", "close", {});
    FlushLocked();
  }
  std::fclose(file_);
}

void TransactionLog::AppendLocked(std::string_view op, std::string_view key,
                                  std::string_view detail) {
  buffer_ += std::to_string(WallMicros());
  buffer_ += ' ';
  buffer_.append(op);
  buffer_ += ' ';
  buffer_.append(key);
  if (!detail.empty()) {
    buffer_ += ' ';
    buffer_.append(detail);
  }
  buffer_ += '\n';
}

void TransactionLog::Append(std::string_view op, std::string_view key, std::string_view detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  AppendLocked(op, key, detail);
  ++records_;
  if (policy_ == LogFlushPolicy::kEveryRecord ||
      (policy_ == LogFlushPolicy::kBuffered && buffer_.size() >= buffer_threshold_)) {
    FlushLocked();
  }
}

void TransactionLog::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  FlushLocked();
}

void TransactionLog::FlushLocked() {
  if (buffer_.empty()) return;
  std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  std::fflush(file_);
  buffer_.clear();
  ++flushes_;
}

}  // namespace qc::cache
