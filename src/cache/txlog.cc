#include "cache/txlog.h"

#include "common/error.h"

namespace qc::cache {

TransactionLog::TransactionLog(const std::string& path, LogFlushPolicy policy,
                               size_t buffer_threshold_bytes)
    : policy_(policy),
      buffer_threshold_(buffer_threshold_bytes),
      open_time_(std::chrono::steady_clock::now()) {
  file_ = std::fopen(path.c_str(), "a");
  if (!file_) throw CacheError("cannot open transaction log: " + path);
}

TransactionLog::~TransactionLog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FlushLocked();
  }
  std::fclose(file_);
}

void TransactionLog::Append(std::string_view op, std::string_view key, std::string_view detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - open_time_)
                          .count();
  buffer_ += std::to_string(micros);
  buffer_ += ' ';
  buffer_.append(op);
  buffer_ += ' ';
  buffer_.append(key);
  if (!detail.empty()) {
    buffer_ += ' ';
    buffer_.append(detail);
  }
  buffer_ += '\n';
  ++records_;
  if (policy_ == LogFlushPolicy::kEveryRecord ||
      (policy_ == LogFlushPolicy::kBuffered && buffer_.size() >= buffer_threshold_)) {
    FlushLocked();
  }
}

void TransactionLog::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  FlushLocked();
}

void TransactionLog::FlushLocked() {
  if (buffer_.empty()) return;
  std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  std::fflush(file_);
  buffer_.clear();
  ++flushes_;
}

}  // namespace qc::cache
