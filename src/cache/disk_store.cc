#include "cache/disk_store.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/error.h"

namespace qc::cache {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSpillExtension = ".obj";
constexpr const char* kQuarantineExtension = ".quarantine";

/// Parse the "-<seq>" suffix out of "<hash>-<seq>.obj"; nullopt for
/// foreign files.
std::optional<uint64_t> SeqFromName(const fs::path& file) {
  const std::string stem = file.stem().string();
  const size_t dash = stem.rfind('-');
  if (dash == std::string::npos || dash + 1 >= stem.size()) return std::nullopt;
  uint64_t seq = 0;
  for (size_t i = dash + 1; i < stem.size(); ++i) {
    const char c = stem[i];
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

bool ReadWholeFile(const fs::path& file, std::string* out) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in) return false;
  *out = std::move(buffer).str();
  return true;
}

}  // namespace

DiskStore::DiskStore(fs::path directory, size_t max_bytes, bool recover)
    : dir_(std::move(directory)), max_bytes_(max_bytes), persistent_(recover) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw CacheError("cannot create disk store directory " + dir_.string() + ": " + ec.message());
  if (persistent_) {
    RecoverFromDirectory();
  } else {
    // Spill area: start clean so stale files from a previous process do not
    // shadow the empty index.
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      fs::remove(entry.path(), ec);
    }
  }
}

DiskStore::~DiskStore() {
  if (persistent_) return;  // the spool IS the durable state — leave it
  std::error_code ec;
  for (const auto& [key, entry] : index_) fs::remove(entry.file, ec);
}

void DiskStore::RecoverFromDirectory() {
  // Scan, verify, and index every spill file; quarantine what fails. LRU
  // order is approximated by write time (the sequence number embedded in
  // the file name, which this store keeps monotonic across restarts by
  // resuming past the maximum seen).
  struct Scanned {
    uint64_t seq;
    fs::path file;
    SpillRecord record;
    size_t file_bytes;
  };
  std::vector<Scanned> scanned;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(dir_, ec)) {
    if (!dirent.is_regular_file(ec)) continue;
    const fs::path& file = dirent.path();
    if (file.extension() != kSpillExtension) continue;  // quarantined/foreign files
    std::string bytes;
    SpillRecord record;
    if (!ReadWholeFile(file, &bytes) || !DecodeSpillRecord(bytes, &record)) {
      ++io_errors_;
      QuarantineFile(file);
      continue;
    }
    const uint64_t seq = SeqFromName(file).value_or(0);
    seq_ = std::max(seq_, seq + 1);
    scanned.push_back({seq, file, std::move(record), bytes.size()});
  }
  std::sort(scanned.begin(), scanned.end(),
            [](const Scanned& a, const Scanned& b) { return a.seq < b.seq; });

  for (Scanned& s : scanned) {
    // A duplicate key means an older record whose replacement's erase was
    // lost in the crash; keep the newest (highest seq) only — in the index
    // AND in the recovered() report.
    if (auto it = index_.find(s.record.key); it != index_.end()) {
      RemoveEntry(it);
      recovered_.erase(std::remove_if(recovered_.begin(), recovered_.end(),
                                      [&](const Recovered& r) { return r.key == s.record.key; }),
                       recovered_.end());
    }
    lru_.push_front(s.record.key);
    Entry entry;
    entry.file = s.file;
    entry.bytes = s.file_bytes;
    entry.lru_pos = lru_.begin();
    bytes_ += s.file_bytes;
    index_.emplace(s.record.key, std::move(entry));
    recovered_.push_back({std::move(s.record.key), std::move(s.record.durable_tag),
                          s.record.expires_at_micros, s.record.payload.size()});
  }
  // Budget may have shrunk since the files were written; trim silently
  // (oldest first — they are at the back of the LRU already). The trimmed
  // keys also leave recovered_ so owners never see entries we dropped.
  if (bytes_ > max_bytes_) {
    std::vector<std::string> trimmed;
    EvictIfNeeded(&trimmed);
    for (const std::string& key : trimmed) {
      recovered_.erase(std::remove_if(recovered_.begin(), recovered_.end(),
                                      [&](const Recovered& r) { return r.key == key; }),
                       recovered_.end());
    }
  }
}

fs::path DiskStore::FileFor(const std::string& key) {
  std::ostringstream name;
  name << std::hex << std::hash<std::string>{}(key) << "-" << std::dec << seq_++
       << kSpillExtension;
  return dir_ / name.str();
}

bool DiskStore::Put(const std::string& key, std::string_view payload, const SpillMeta& meta,
                    std::vector<std::string>* evicted) {
  const std::string record =
      EncodeSpillRecord(key, meta.durable_tag, meta.expires_at_micros, payload);
  if (record.size() > max_bytes_) return false;
  Erase(key);

  const fs::path file = FileFor(key);
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    bool ok = static_cast<bool>(out);
    if (ok) {
      out.write(record.data(), static_cast<std::streamsize>(record.size()));
      out.flush();
      ok = static_cast<bool>(out);
    }
    if (!ok) {
      // Failed write: count it, drop the partial file, report not-stored.
      // The caller already holds the value in memory; losing the spill
      // costs a future miss, not correctness.
      ++io_errors_;
      out.close();
      std::error_code ec;
      fs::remove(file, ec);
      return false;
    }
  }

  lru_.push_front(key);
  Entry entry;
  entry.file = file;
  entry.bytes = record.size();
  entry.lru_pos = lru_.begin();
  index_.emplace(key, std::move(entry));
  bytes_ += record.size();
  EvictIfNeeded(evicted);
  return true;
}

DiskStore::ReadStatus DiskStore::Read(const std::string& key, std::string* payload) {
  auto it = index_.find(key);
  if (it == index_.end()) return ReadStatus::kMiss;
  std::string bytes;
  SpillRecord record;
  if (!ReadWholeFile(it->second.file, &bytes) || !DecodeSpillRecord(bytes, &record) ||
      record.key != key) {
    ++io_errors_;
    Quarantine(it);
    return ReadStatus::kCorrupt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *payload = std::move(record.payload);
  return ReadStatus::kHit;
}

std::optional<std::string> DiskStore::Get(const std::string& key) {
  std::string payload;
  if (Read(key, &payload) != ReadStatus::kHit) return std::nullopt;
  return payload;
}

void DiskStore::QuarantineEntry(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  ++io_errors_;
  Quarantine(it);
}

bool DiskStore::Erase(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  RemoveEntry(it);
  return true;
}

void DiskStore::Clear() {
  std::error_code ec;
  for (const auto& [key, entry] : index_) fs::remove(entry.file, ec);
  index_.clear();
  lru_.clear();
  bytes_ = 0;
}

void DiskStore::EvictIfNeeded(std::vector<std::string>* evicted) {
  while (bytes_ > max_bytes_ && index_.size() > 1) {
    const std::string victim = lru_.back();
    if (evicted) evicted->push_back(victim);
    RemoveEntry(index_.find(victim));
  }
}

void DiskStore::Quarantine(std::unordered_map<std::string, Entry>::iterator it) {
  QuarantineFile(it->second.file);
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  index_.erase(it);
}

void DiskStore::QuarantineFile(const fs::path& file) {
  fs::path target = file;
  target += kQuarantineExtension;
  std::error_code ec;
  fs::rename(file, target, ec);
  if (ec) {
    // Rename failed (e.g. read-only filesystem): fall back to removal so
    // the bad file cannot be rediscovered by the next recovery scan.
    fs::remove(file, ec);
  }
  ++quarantined_;
}

void DiskStore::RemoveEntry(std::unordered_map<std::string, Entry>::iterator it) {
  std::error_code ec;
  fs::remove(it->second.file, ec);
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  index_.erase(it);
}

}  // namespace qc::cache
