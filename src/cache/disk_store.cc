#include "cache/disk_store.h"

#include <fstream>
#include <functional>
#include <sstream>

#include "common/error.h"

namespace qc::cache {

namespace fs = std::filesystem;

DiskStore::DiskStore(fs::path directory, size_t max_bytes)
    : dir_(std::move(directory)), max_bytes_(max_bytes) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw CacheError("cannot create disk store directory " + dir_.string() + ": " + ec.message());
  // Spill area: start clean so stale files from a previous process do not
  // shadow the empty index.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    fs::remove(entry.path(), ec);
  }
}

DiskStore::~DiskStore() {
  std::error_code ec;
  for (const auto& [key, entry] : index_) fs::remove(entry.file, ec);
}

fs::path DiskStore::FileFor(const std::string& key) {
  std::ostringstream name;
  name << std::hex << std::hash<std::string>{}(key) << "-" << seq_++ << ".obj";
  return dir_ / name.str();
}

bool DiskStore::Put(const std::string& key, std::string_view bytes,
                    std::vector<std::string>* evicted) {
  if (bytes.size() > max_bytes_) return false;
  Erase(key);

  const fs::path file = FileFor(key);
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    if (!out) throw CacheError("cannot write disk store file " + file.string());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) throw CacheError("short write to disk store file " + file.string());
  }

  lru_.push_front(key);
  Entry entry;
  entry.file = file;
  entry.bytes = bytes.size();
  entry.lru_pos = lru_.begin();
  index_.emplace(key, std::move(entry));
  bytes_ += bytes.size();
  EvictIfNeeded(evicted);
  return true;
}

std::optional<std::string> DiskStore::Get(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  std::ifstream in(it->second.file, std::ios::binary);
  if (!in) throw CacheError("cannot read disk store file " + it->second.file.string());
  std::string data(it->second.bytes, '\0');
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  if (static_cast<size_t>(in.gcount()) != data.size()) {
    throw CacheError("short read from disk store file " + it->second.file.string());
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return data;
}

bool DiskStore::Erase(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  RemoveEntry(it);
  return true;
}

void DiskStore::Clear() {
  std::error_code ec;
  for (const auto& [key, entry] : index_) fs::remove(entry.file, ec);
  index_.clear();
  lru_.clear();
  bytes_ = 0;
}

void DiskStore::EvictIfNeeded(std::vector<std::string>* evicted) {
  while (bytes_ > max_bytes_ && index_.size() > 1) {
    const std::string victim = lru_.back();
    if (evicted) evicted->push_back(victim);
    RemoveEntry(index_.find(victim));
  }
}

void DiskStore::RemoveEntry(std::unordered_map<std::string, Entry>::iterator it) {
  std::error_code ec;
  fs::remove(it->second.file, ec);
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  index_.erase(it);
}

}  // namespace qc::cache
