// Containment-aware semantic cache index (docs/SEMANTIC.md).
//
// The GPS cache hits only on exact normalized fingerprints; range-heavy
// workloads therefore miss even when a cached result strictly contains the
// answer. This module is the middle rung of the middleware's lookup ladder
// (exact → semantic → miss): it maps cached *source* entries — plain
// single-table projections with conjunctive column-vs-constant predicates —
// to their compiled definitely-true interval sets (dup/row_index's ValueSet
// algebra) and answers "is there a cached superset of this predicate whose
// projection covers every column the incoming query reads?". On a match the
// engine evaluates the incoming statement's *residual* predicate over the
// cached rows (rebinding the statement against an immutable in-memory
// mirror of the result, so the vectorized batch engine runs unchanged) and
// never touches the base table.
//
// Soundness of the containment test: a supported WHERE clause is an AND of
// single-column predicates, and each per-column predicate compiles to the
// exact set of values for which it is definitely true (CompileAcceptSet is
// exact in Kleene logic). A row is in the result iff every per-column value
// lands in its column's accept set, so the result's row set is the product
// of the per-column sets and `incoming ⊆ source` reduces to per-column
// subset checks: for every column the source constrains, the incoming query
// must constrain it to a subset (an unconstrained incoming column is the
// universe and only a universal source constraint — never stored — could
// contain it). Subset is Intersect(A, Complement(B)).empty().
//
// Freshness: every entry carries the update-epoch snapshot that guarded
// its cache admission (TryRegister refuses a snapshot that is already
// stale, closing the register-after-Put race). The engine re-validates the
// *entry's* snapshot after the residual filter — the semantic analogue of
// the guarded Put — so an entry invalidated mid-probe, or one whose update
// has stamped its epochs but not yet torn the entry down, is rejected
// rather than served. The incoming probe's own snapshot is checked too,
// but the entry snapshot is the load-bearing one: a probe snapshot taken
// *after* an update is trivially current and says nothing about the age of
// the cached rows. See docs/SEMANTIC.md, "Epoch re-validation".
//
// @thread_safety Internally synchronized. Register/Remove/FindSuperset take
// the index mutex; the SourceEntry returned by FindSuperset is immutable
// shared state (safe to use after a racing Remove). Each entry's mirror
// table is built at most once under the entry's own mutex and never mutated
// afterwards, so residual scans read it without locks (the vectorized scan
// pool's workers included). Counters are relaxed atomics folded into
// CacheStats snapshots on demand.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/stats.h"
#include "dup/epochs.h"
#include "dup/row_index.h"
#include "sql/binder.h"
#include "sql/result.h"

namespace qc::cache {

class SemanticIndex {
 public:
  /// The analyzed form of a supported statement: which base table it reads,
  /// the per-column definitely-true sets of its WHERE conjuncts, and which
  /// base columns it references anywhere (projection, aggregates, GROUP BY,
  /// ORDER BY, WHERE). `constraints` is sorted by column and never contains
  /// universal sets.
  struct Shape {
    const storage::Table* table = nullptr;
    std::string table_name;  // upper-cased
    std::vector<std::pair<uint32_t, dup::ValueSet>> constraints;
    std::vector<uint32_t> referenced;  // sorted, unique
    bool references_all = false;       // SELECT * — needs every base column

    // Source eligibility: the result rows are exactly the matching base
    // rows (plain column projection or *, no aggregation/GROUP BY/LIMIT),
    // so the entry can answer contained queries by re-filtering.
    bool source_eligible = false;
    bool star = false;                   // projection is SELECT *
    std::vector<uint32_t> projected;     // sorted base columns in the result
    std::vector<int32_t> result_pos;     // base column -> result column, -1 absent
  };

  /// One registered cached result. Immutable after construction except for
  /// the lazily-built mirror.
  struct SourceEntry {
    std::string key;
    const storage::Table* base = nullptr;  // schema donor for the mirror
    std::vector<std::pair<uint32_t, dup::ValueSet>> constraints;
    bool star = false;
    std::vector<uint32_t> projected;
    std::vector<int32_t> result_pos;
    sql::ResultPtr result;
    /// The snapshot that guarded this result's cache admission. Current()
    /// proves the cached rows reflect every acknowledged update to any
    /// dependency slot of the *source* statement — a superset of the slots
    /// any contained probe depends on (projection coverage makes the
    /// probe's referenced columns a subset of the source's).
    dup::UpdateEpochs::Snapshot snapshot;

    /// The CDC stream sequence the source's read observed (0 outside
    /// cache-node mode). A result derived from this entry re-enters the
    /// cache through the same guarded-Put path as a database fill, and its
    /// rows are a subset of the source's — so it inherits this sequence
    /// for the gate check (docs/CLUSTER.md).
    uint64_t observed_seq = 0;

    /// The cached rows as an immutable storage::Table with the base table's
    /// arity (unprojected columns are NULL — projection coverage guarantees
    /// they are never read) and every column nullable. Built on first
    /// semantic hit, then shared by every later residual scan.
    const storage::Table* EnsureMirror();

   private:
    std::mutex mirror_mu;
    std::shared_ptr<const storage::Table> mirror;
  };

  /// Analyze a bound statement with its parameter values substituted.
  /// nullopt when the shape is unsupported as an incoming probe: not a
  /// single-table SELECT, or WHERE is not an AND of column-vs-constant
  /// predicates the interval algebra expresses exactly.
  static std::optional<Shape> Analyze(const sql::BoundQuery& query,
                                      const std::vector<Value>& params);

  /// Register `key`'s cached result as a semantic source if its shape is
  /// source-eligible; no-op otherwise. `snapshot` is the epoch snapshot
  /// that guarded the result's cache admission; registration is refused
  /// (under the index mutex, so the check and the insert are atomic) when
  /// it is no longer current — an update may have already invalidated the
  /// cache entry between the guarded Put and this call, and the removal
  /// listener that fired then saw no entry to drop. Re-registering a key
  /// replaces its entry (the refresher path installs the refreshed rows
  /// this way). At most kMaxSourcesPerTable entries are kept per table;
  /// at capacity the entry with the fewest cached rows (least containment
  /// coverage) is dropped — dropping is always safe, the exact tier still
  /// serves them.
  /// `observed_seq` is the CDC sequence the result's read observed (see
  /// SourceEntry::observed_seq); 0 outside cache-node mode.
  void TryRegister(const std::string& key, const sql::BoundQuery& query,
                   const std::vector<Value>& params, sql::ResultPtr result,
                   const dup::UpdateEpochs::Snapshot& snapshot, uint64_t observed_seq = 0);

  /// Drop `key`'s entry if present (cache removal listener). Idempotent.
  void Remove(const std::string& key);

  /// Drop everything (Policy I clears, tests).
  void Clear();

  /// Find a registered superset of `shape`: same table, projection covers
  /// every referenced column, per-column containment holds. Of several
  /// candidates the one with the fewest cached rows wins (smallest residual
  /// scan). Candidates rejected only by projection coverage bump
  /// semantic_rejects_projection.
  std::shared_ptr<SourceEntry> FindSuperset(const Shape& shape);

  /// Evaluate `query` (with `params`) over the entry's cached rows: the
  /// statement is rebound against the entry's mirror table and executed by
  /// the normal sql::Execute entry point, so the vectorized engine, the
  /// aggregate/GROUP BY machinery and ORDER BY/LIMIT all apply unchanged.
  static sql::ResultSet ExecuteResidual(SourceEntry& entry, const sql::BoundQuery& query,
                                        const std::vector<Value>& params);

  size_t entry_count() const;

  // Ladder counters, bumped by the engine as the probe advances and folded
  // into CacheStats snapshots (the keys documented in docs/SERVING.md).
  void RecordProbe() { probes_.fetch_add(1, std::memory_order_relaxed); }
  void RecordShapeReject() { rejects_shape_.fetch_add(1, std::memory_order_relaxed); }
  void RecordEpochReject() { rejects_epoch_.fetch_add(1, std::memory_order_relaxed); }
  void RecordHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void RecordResidualNanos(uint64_t ns) {
    residual_filter_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  void FoldInto(CacheStats& stats) const;

  /// Per-table bound on registered sources: each entry pins its result rows
  /// (plus, after a hit, a full-arity mirror) outside the cache's byte
  /// budget, so the index trades a little potential reuse for a hard cap.
  static constexpr size_t kMaxSourcesPerTable = 128;

 private:
  void RemoveLocked(const std::string& key);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<std::shared_ptr<SourceEntry>>> by_table_;
  std::unordered_map<std::string, std::string> table_of_key_;

  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> rejects_shape_{0};
  std::atomic<uint64_t> rejects_projection_{0};
  std::atomic<uint64_t> rejects_epoch_{0};
  std::atomic<uint64_t> residual_filter_ns_{0};
};

}  // namespace qc::cache
