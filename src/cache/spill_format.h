// Self-describing on-disk format for GPS-cache spill files.
//
// Each DiskStore entry is one file holding one record:
//
//   offset  size  field
//   0       4     magic "QCSP"
//   4       4     format version (currently 1)
//   8       4     key length
//   12      4     durable-tag length
//   16      8     payload length
//   24      8     absolute expiration, wall-clock microseconds since the
//                 Unix epoch (-1 = never expires)
//   32      4     CRC-32 over key + tag + payload
//   36      ...   key bytes, tag bytes, payload bytes (concatenated)
//
// The header makes every spill file independently recoverable after an
// unclean shutdown: a directory scan can rebuild the index (key, size),
// re-arm expiration (wall-clock, so it survives process restarts), and
// hand the durable tag — an opaque annotation the middleware uses to
// re-register the entry's ODG dependencies — back to higher layers. The
// CRC turns torn writes and bit rot into a detectable decode failure
// instead of garbage served to a client. Integers are host-endian: spill
// files are a local cache tier, not an interchange format.
//
// @thread_safety Pure functions; safe from any thread.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qc::cache {

inline constexpr char kSpillMagic[4] = {'Q', 'C', 'S', 'P'};
inline constexpr uint32_t kSpillVersion = 1;
inline constexpr size_t kSpillHeaderBytes = 36;

/// Expiration sentinel: the entry never expires.
inline constexpr int64_t kNoExpiry = -1;

struct SpillRecord {
  std::string key;
  /// Opaque higher-layer annotation persisted with the value (the
  /// middleware stores the statement's canonical SQL + parameters here so
  /// DUP registration can be rebuilt on recovery). May be empty.
  std::string durable_tag;
  int64_t expires_at_micros = kNoExpiry;
  std::string payload;
};

/// Serialize a record (header + CRC + body) into one byte string.
std::string EncodeSpillRecord(std::string_view key, std::string_view durable_tag,
                              int64_t expires_at_micros, std::string_view payload);

/// Total file size EncodeSpillRecord would produce; the DiskStore accounts
/// budgets against this, not the bare payload.
inline size_t SpillRecordBytes(size_t key_bytes, size_t tag_bytes, size_t payload_bytes) {
  return kSpillHeaderBytes + key_bytes + tag_bytes + payload_bytes;
}

/// Parse and verify one record. Returns false — without throwing — on any
/// structural problem: bad magic, unknown version, lengths inconsistent
/// with the buffer, or CRC mismatch.
bool DecodeSpillRecord(std::string_view bytes, SpillRecord* out);

}  // namespace qc::cache
