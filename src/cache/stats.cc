#include "cache/stats.h"

#include <sstream>

namespace qc::cache {

std::string CacheStats::ToString() const {
  std::ostringstream os;
  os << "lookups=" << lookups << " hits=" << hits << " (mem=" << memory_hits
     << ", disk=" << disk_hits << ") misses=" << misses << " hit_rate=" << HitRate()
     << " puts=" << puts << " invalidations=" << invalidations << " evictions=" << evictions
     << " spills=" << spills << " expirations=" << expirations << " clears=" << clears;
  return os.str();
}

}  // namespace qc::cache
