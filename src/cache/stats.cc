#include "cache/stats.h"

#include <sstream>

namespace qc::cache {

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  lookups += other.lookups;
  hits += other.hits;
  memory_hits += other.memory_hits;
  disk_hits += other.disk_hits;
  misses += other.misses;
  puts += other.puts;
  invalidations += other.invalidations;
  invalidate_shard_locks += other.invalidate_shard_locks;
  evictions += other.evictions;
  spills += other.spills;
  expirations += other.expirations;
  clears += other.clears;
  admit_rejects += other.admit_rejects;
  disk_errors += other.disk_errors;
  quarantined += other.quarantined;
  recovered += other.recovered;
  return *this;
}

std::string CacheStats::ToString() const {
  std::ostringstream os;
  os << "lookups=" << lookups << " hits=" << hits << " (mem=" << memory_hits
     << ", disk=" << disk_hits << ") misses=" << misses << " hit_rate=" << HitRate()
     << " puts=" << puts << " invalidations=" << invalidations
     << " invalidate_shard_locks=" << invalidate_shard_locks << " evictions=" << evictions
     << " spills=" << spills << " expirations=" << expirations << " clears=" << clears
     << " admit_rejects=" << admit_rejects << " disk_errors=" << disk_errors
     << " quarantined=" << quarantined << " recovered=" << recovered;
  return os.str();
}

}  // namespace qc::cache
