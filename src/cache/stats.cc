#include "cache/stats.h"

#include <sstream>

namespace qc::cache {

CacheStats& CacheStats::operator+=(const CacheStats& other) {
#define QC_CACHE_STATS_ADD(name) name += other.name;
  QC_CACHE_STATS_COUNTERS(QC_CACHE_STATS_ADD)
#undef QC_CACHE_STATS_ADD
  return *this;
}

std::string CacheStats::ToString() const {
  std::ostringstream os;
  bool first = true;
  ForEachCounter([&](const char* name, uint64_t value) {
    if (!first) os << " ";
    first = false;
    os << name << "=" << value;
  });
  os << " hit_rate=" << HitRate();
  return os.str();
}

HitPathStripe& HitPathCounters::Local() {
  // Threads are assigned stripes round-robin on first use; a thread keeps
  // its stripe for life, so two hot reader threads land on different
  // cache lines (up to kStripes of them).
  static std::atomic<size_t> next_stripe{0};
  thread_local const size_t stripe =
      next_stripe.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripes_[stripe];
}

void HitPathCounters::FoldInto(CacheStats& stats) const {
  for (const HitPathStripe& stripe : stripes_) {
    stats.lookups += stripe.lookups.load(std::memory_order_relaxed);
    stats.hits += stripe.hits.load(std::memory_order_relaxed);
    stats.memory_hits += stripe.memory_hits.load(std::memory_order_relaxed);
    stats.misses += stripe.misses.load(std::memory_order_relaxed);
    stats.lazy_expired_misses +=
        stripe.lazy_expired_misses.load(std::memory_order_relaxed);
  }
}

}  // namespace qc::cache
