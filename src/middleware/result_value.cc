#include "middleware/result_value.h"

#include <cstdio>
#include <cstring>

#include "common/error.h"

namespace qc::middleware {

namespace {

// Format (text, length-prefixed where content is free-form):
//   RS1\n<ncols>\n(<len>:<name>\n)*<nrows>\n(row: one value per line)*
//   value lines: "N" | "I <int>" | "D <hexfloat>" | "S <len>:<bytes>"

void AppendValue(std::string& out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      out += "N\n";
      break;
    case ValueType::kInt:
      out += "I ";
      out += std::to_string(v.as_int());
      out += '\n';
      break;
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "D %a\n", v.as_double());
      out += buf;
      break;
    }
    case ValueType::kString:
      out += "S ";
      out += std::to_string(v.as_string().size());
      out += ':';
      out += v.as_string();
      out += '\n';
      break;
  }
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::string_view Line() {
    const size_t nl = data_.find('\n', pos_);
    if (nl == std::string_view::npos) throw CacheError("result deserialize: truncated input");
    std::string_view line = data_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return line;
  }

  /// Reads "<len>:<bytes>" where bytes may contain newlines.
  std::string LengthPrefixed() {
    const size_t colon = data_.find(':', pos_);
    if (colon == std::string_view::npos) throw CacheError("result deserialize: missing length");
    const size_t len = ParseSize(data_.substr(pos_, colon - pos_));
    pos_ = colon + 1;
    if (pos_ + len + 1 > data_.size()) throw CacheError("result deserialize: truncated string");
    std::string out(data_.substr(pos_, len));
    pos_ += len;
    if (data_[pos_] != '\n') throw CacheError("result deserialize: missing terminator");
    ++pos_;
    return out;
  }

  Value ReadValue() {
    if (pos_ >= data_.size()) throw CacheError("result deserialize: truncated value");
    const char tag = data_[pos_];
    if (tag == 'N') {
      Line();
      return Value::Null();
    }
    if (tag == 'I') {
      std::string_view line = Line();
      return Value(static_cast<int64_t>(std::stoll(std::string(line.substr(2)))));
    }
    if (tag == 'D') {
      std::string_view line = Line();
      return Value(std::strtod(std::string(line.substr(2)).c_str(), nullptr));
    }
    if (tag == 'S') {
      pos_ += 2;  // "S "
      return Value(LengthPrefixed());
    }
    throw CacheError("result deserialize: bad value tag");
  }

  static size_t ParseSize(std::string_view s) {
    size_t out = 0;
    for (char c : s) {
      if (c < '0' || c > '9') throw CacheError("result deserialize: bad number");
      out = out * 10 + static_cast<size_t>(c - '0');
    }
    return out;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string ResultValue::Serialize() const {
  std::string out = "RS1\n";
  out += std::to_string(result_->columns().size());
  out += '\n';
  for (const std::string& name : result_->columns()) {
    out += std::to_string(name.size());
    out += ':';
    out += name;
    out += '\n';
  }
  out += std::to_string(result_->row_count());
  out += '\n';
  for (const storage::Row& row : result_->rows()) {
    for (const Value& v : row) AppendValue(out, v);
  }
  return out;
}

std::string EncodeQueryTag(const std::string& canonical_sql, const std::vector<Value>& params) {
  std::string out = "QT1\n";
  out += std::to_string(canonical_sql.size());
  out += ':';
  out += canonical_sql;
  out += '\n';
  out += std::to_string(params.size());
  out += '\n';
  for (const Value& v : params) AppendValue(out, v);
  return out;
}

void DecodeQueryTag(std::string_view tag, std::string* canonical_sql,
                    std::vector<Value>* params) {
  Reader reader(tag);
  if (reader.Line() != "QT1") throw CacheError("query tag: bad magic");
  *canonical_sql = reader.LengthPrefixed();
  const size_t nparams = Reader::ParseSize(reader.Line());
  params->clear();
  params->reserve(nparams);
  for (size_t i = 0; i < nparams; ++i) params->push_back(reader.ReadValue());
}

cache::CacheValuePtr ResultValue::Deserialize(std::string_view bytes) {
  Reader reader(bytes);
  if (reader.Line() != "RS1") throw CacheError("result deserialize: bad magic");
  const size_t ncols = Reader::ParseSize(reader.Line());
  std::vector<std::string> columns;
  columns.reserve(ncols);
  for (size_t i = 0; i < ncols; ++i) columns.push_back(reader.LengthPrefixed());
  auto result = std::make_shared<sql::ResultSet>(std::move(columns));
  const size_t nrows = Reader::ParseSize(reader.Line());
  for (size_t r = 0; r < nrows; ++r) {
    storage::Row row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) row.push_back(reader.ReadValue());
    result->AddRow(std::move(row));
  }
  return std::make_shared<ResultValue>(result);
}

}  // namespace qc::middleware
