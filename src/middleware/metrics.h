// Lightweight latency metrics for the query path: log-scaled histograms
// with quantile estimation, split by cache hit vs. database execution.
// This is the instrumentation the paper's §2 "performance profiling"
// story needs — it makes "the bottleneck is the query to the persistent
// store" measurable inside the middleware itself.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace qc::middleware {

/// A fixed log-scale histogram over [1 µs/16, ~70 s). Thread-safe,
/// lock-free recording.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(std::chrono::nanoseconds latency);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::chrono::nanoseconds total() const {
    return std::chrono::nanoseconds(total_ns_.load(std::memory_order_relaxed));
  }
  std::chrono::nanoseconds mean() const;

  /// Upper bound of the bucket containing the q-quantile (0 < q <= 1).
  std::chrono::nanoseconds Quantile(double q) const;

  std::string Summary() const;

 private:
  static size_t BucketFor(std::chrono::nanoseconds latency);
  static std::chrono::nanoseconds BucketUpperBound(size_t bucket);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
};

/// Hit/miss-split latency metrics for a query engine, plus the write-path
/// invalidation cost: one `invalidations` sample per statement-level
/// update batch, covering epoch stamping, affected-key computation and
/// cache removal (the synchronous tax every DML statement pays).
struct QueryLatencyMetrics {
  LatencyHistogram hits;
  LatencyHistogram misses;
  LatencyHistogram invalidations;

  std::string Summary() const;
};

}  // namespace qc::middleware
