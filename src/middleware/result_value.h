// Adapts sql::ResultSet to the GPS cache's CacheValue interface, with a
// compact self-describing serialization so results can spill to the disk
// store and round-trip intact.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/value.h"
#include "sql/result.h"

namespace qc::middleware {

class ResultValue : public cache::CacheValue {
 public:
  explicit ResultValue(sql::ResultPtr result) : result_(std::move(result)) {}

  const sql::ResultPtr& result() const { return result_; }

  size_t ByteSize() const override { return result_->ByteSize(); }
  std::string Serialize() const override;

  /// Inverse of Serialize(). Throws CacheError on malformed input.
  static cache::CacheValuePtr Deserialize(std::string_view bytes);

 private:
  sql::ResultPtr result_;
};

/// Durable tag persisted with each cached query result (the GPS cache's
/// spill files carry it through crashes): the statement's canonical SQL
/// plus its typed parameter values, enough to rebuild the entry's DUP
/// registration on warm restart. Version-prefixed ("QT1").
std::string EncodeQueryTag(const std::string& canonical_sql, const std::vector<Value>& params);

/// Inverse of EncodeQueryTag. Throws CacheError on malformed input (the
/// warm-restart path catches and falls back to conservative
/// re-registration from the fingerprint).
void DecodeQueryTag(std::string_view tag, std::string* canonical_sql,
                    std::vector<Value>* params);

}  // namespace qc::middleware
