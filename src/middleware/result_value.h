// Adapts sql::ResultSet to the GPS cache's CacheValue interface, with a
// compact self-describing serialization so results can spill to the disk
// store and round-trip intact.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "cache/value.h"
#include "sql/result.h"

namespace qc::middleware {

class ResultValue : public cache::CacheValue {
 public:
  explicit ResultValue(sql::ResultPtr result) : result_(std::move(result)) {}

  const sql::ResultPtr& result() const { return result_; }

  size_t ByteSize() const override { return result_->ByteSize(); }
  std::string Serialize() const override;

  /// Inverse of Serialize(). Throws CacheError on malformed input.
  static cache::CacheValuePtr Deserialize(std::string_view bytes);

 private:
  sql::ResultPtr result_;
};

}  // namespace qc::middleware
