#include "middleware/metrics.h"

#include <sstream>

namespace qc::middleware {

namespace {

// Buckets double from a 62.5 ns floor: bucket i covers
// [62.5ns * 2^i, 62.5ns * 2^(i+1)).
constexpr uint64_t kFloorNs = 62;  // ~62.5 ns

std::string HumanDuration(std::chrono::nanoseconds d) {
  const double ns = static_cast<double>(d.count());
  std::ostringstream os;
  os.precision(3);
  if (ns < 1e3) {
    os << ns << "ns";
  } else if (ns < 1e6) {
    os << ns / 1e3 << "us";
  } else if (ns < 1e9) {
    os << ns / 1e6 << "ms";
  } else {
    os << ns / 1e9 << "s";
  }
  return os.str();
}

}  // namespace

size_t LatencyHistogram::BucketFor(std::chrono::nanoseconds latency) {
  uint64_t ns = static_cast<uint64_t>(latency.count() < 0 ? 0 : latency.count());
  size_t bucket = 0;
  uint64_t bound = kFloorNs;
  while (bucket + 1 < kBuckets && ns >= bound) {
    bound <<= 1;
    ++bucket;
  }
  return bucket;
}

std::chrono::nanoseconds LatencyHistogram::BucketUpperBound(size_t bucket) {
  return std::chrono::nanoseconds(kFloorNs << (bucket + 1));
}

void LatencyHistogram::Record(std::chrono::nanoseconds latency) {
  buckets_[BucketFor(latency)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(static_cast<uint64_t>(latency.count() < 0 ? 0 : latency.count()),
                      std::memory_order_relaxed);
}

std::chrono::nanoseconds LatencyHistogram::mean() const {
  const uint64_t n = count();
  if (n == 0) return std::chrono::nanoseconds(0);
  return std::chrono::nanoseconds(total_ns_.load(std::memory_order_relaxed) / n);
}

std::chrono::nanoseconds LatencyHistogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return std::chrono::nanoseconds(0);
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

std::string LatencyHistogram::Summary() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << HumanDuration(mean())
     << " p50=" << HumanDuration(Quantile(0.5)) << " p95=" << HumanDuration(Quantile(0.95))
     << " p99=" << HumanDuration(Quantile(0.99));
  return os.str();
}

std::string QueryLatencyMetrics::Summary() const {
  return "hits: " + hits.Summary() + "\nmisses: " + misses.Summary() +
         "\ninvalidations: " + invalidations.Summary();
}

}  // namespace qc::middleware
