// The middleware query processor + cache manager of paper Fig. 7.
//
// A client calls Execute(); the engine
//   (2) looks the fingerprint up in the GPS cache,
//   (3) on a hit returns the cached result,
//   (4) on a miss executes against the database,
//   (3') stores the result and registers its ODG dependencies with the
//        DUP engine.
// Database mutations (5 set / 8 create / 9 delete) arrive as UpdateEvents
// through the Database subscription and are turned into (6/10) selective
// invalidations by the DUP engine.
//
// Concurrency: the cache and DUP engine are internally synchronized, but
// the *sequence* miss→execute→register is not atomic with respect to
// concurrent updates; like the paper's system, updates and queries are
// assumed to be serialized by the caller (the benchmarks drive one
// thread). See tests/middleware for the correctness property this buys.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "cache/gps_cache.h"
#include "dup/engine.h"
#include "middleware/metrics.h"
#include "middleware/result_value.h"
#include "sql/binder.h"
#include "sql/dml.h"
#include "sql/evaluator.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace qc::middleware {

struct QueryEngineStats {
  uint64_t executions = 0;      // Execute() calls
  uint64_t cache_hits = 0;
  uint64_t db_executions = 0;   // misses that went to the database
  uint64_t uncacheable = 0;     // results too large to cache
  uint64_t refresh_executions = 0;  // eager re-executions (refresh_on_invalidate)

  double HitRate() const {
    return executions == 0 ? 0.0
                           : static_cast<double>(cache_hits) / static_cast<double>(executions);
  }
};

class CachedQueryEngine {
 public:
  struct Options {
    dup::InvalidationPolicy policy = dup::InvalidationPolicy::kValueAware;
    dup::ExtractionOptions extraction;
    cache::GpsCacheConfig cache;

    /// Weighted-DUP staleness budget per cached result (see
    /// dup::DupEngine::Options::obsolescence_threshold). Non-zero values
    /// intentionally serve bounded-stale results.
    double obsolescence_threshold = 0.0;

    /// Applied to every cached result; nullopt = no expiration.
    std::optional<cache::Duration> default_ttl;

    /// When false, query results are executed but never cached — the
    /// "no cache" baseline.
    bool caching_enabled = true;

    /// When false, the engine does NOT subscribe to the database's update
    /// events; the owner must feed dup_engine().OnUpdate() itself. Used by
    /// the cluster layer, where remote nodes receive invalidation traffic
    /// over a (simulated) network rather than synchronously.
    bool subscribe_to_database = true;

    /// Record per-execution latency histograms, split hit vs. miss
    /// (adds two clock reads per Execute).
    bool collect_latency_metrics = false;

    /// Paper Fig. 7 step 10 "result discard/update cache": when true,
    /// affected cached results are re-executed and re-stored in place of
    /// being invalidated, keeping the cache warm at the cost of eager
    /// refresh executions on the update path.
    bool refresh_on_invalidate = false;

    /// Synthetic per-miss penalty modeling a remote persistent store (the
    /// paper's rule server reached DB2 over JDBC; our tables are
    /// in-process). Applied as a busy-wait on every database execution
    /// that Execute() performs; ExecuteUncached (the test oracle) is
    /// exempt. 0 = disabled.
    std::chrono::microseconds simulated_db_latency{0};
  };

  /// The engine subscribes to `db` for update events; `db` must outlive it.
  CachedQueryEngine(storage::Database& db, Options options);

  /// Parse + bind once; reuse for repeated execution ("compile time").
  /// Prepared statements are cached per canonical SQL.
  std::shared_ptr<const sql::BoundQuery> Prepare(const std::string& sql);

  struct ExecuteResult {
    sql::ResultPtr result;
    bool cache_hit = false;
  };

  /// Execute a prepared statement with parameters.
  ExecuteResult Execute(const std::shared_ptr<const sql::BoundQuery>& query,
                        const std::vector<Value>& params = {});

  /// Dynamic SQL path: parse, bind, execute (still cached).
  ExecuteResult ExecuteSql(const std::string& sql, const std::vector<Value>& params = {});

  /// Execute a DML statement (INSERT / UPDATE / DELETE). Mutations flow
  /// through the storage layer, so cached query results are invalidated by
  /// the configured DUP policy. Returns the number of affected rows.
  uint64_t ExecuteDml(const std::string& sql, const std::vector<Value>& params = {});

  /// Direct, uncached execution (used by tests to cross-check).
  sql::ResultSet ExecuteUncached(const sql::BoundQuery& query,
                                 const std::vector<Value>& params = {}) const;

  QueryEngineStats stats() const;
  cache::CacheStats cache_stats() const { return cache_->stats(); }
  dup::DupStats dup_stats() const { return dup_->stats(); }
  const QueryLatencyMetrics& latency_metrics() const { return latency_; }

  cache::GpsCache& cache() { return *cache_; }
  dup::DupEngine& dup_engine() { return *dup_; }
  storage::Database& database() { return db_; }

 private:
  ExecuteResult ExecuteInternal(const std::shared_ptr<const sql::BoundQuery>& query,
                                const std::vector<Value>& params);

  storage::Database& db_;
  Options options_;
  std::unique_ptr<cache::GpsCache> cache_;
  std::unique_ptr<dup::DupEngine> dup_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const sql::BoundQuery>> prepared_;
  QueryEngineStats stats_;
  QueryLatencyMetrics latency_;
};

}  // namespace qc::middleware
