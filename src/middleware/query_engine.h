// The middleware query processor + cache manager of paper Fig. 7.
//
// A client calls Execute(); the engine
//   (2) looks the fingerprint up in the GPS cache,
//   (3) on a hit returns the cached result,
//   (4) on a miss executes against the database,
//   (3') stores the result and registers its ODG dependencies with the
//        DUP engine.
//
// Lookup is a three-level ladder (docs/SEMANTIC.md): exact fingerprint →
// semantic (answer from a cached *superset* result by filtering its rows —
// cache::SemanticIndex; enabled by Options::cache.semantic_lookup) → miss.
// A semantic hit validates the statement's update-epoch snapshot after the
// residual filter, exactly like a guarded Put, so it can never serve rows
// older than an acknowledged update; the derived result is then admitted
// under its own fingerprint through the normal guarded-Put path.
// Database mutations (5 set / 8 create / 9 delete) arrive as UpdateEvents
// through the Database subscription and are turned into (6/10) selective
// invalidations by the DUP engine.
//
// Warm restart: when Options::cache.recover_on_open is set (disk/hybrid
// modes), the GPS cache re-indexes surviving spill files at construction
// and the engine re-registers every recovered entry in the ODG — exactly
// when its durable tag (canonical SQL + typed parameters) decodes,
// conservatively from the fingerprint's SQL skeleton otherwise — so
// post-restart updates keep invalidating pre-restart results under every
// policy. Entries that cannot be re-registered at all are dropped. See
// docs/PERSISTENCE.md.
//
// @thread_safety CachedQueryEngine is fully thread-safe: any number of
// threads may call Prepare/Execute/ExecuteSql/ExecuteDml concurrently.
// The miss path miss→execute→register/store is made safe against
// concurrent updates by the update-epoch protocol: Execute() snapshots the
// statement's dependency epochs before reading the database, and the
// result is stored through a guarded Put that re-validates the snapshot
// under the cache shard lock — if any dependency's epoch advanced during
// execution, the (possibly stale) result is discarded instead of cached
// and counted in QueryEngineStats::stale_discards. Data access is guarded
// by each Table's cooperative reader-writer lock: Execute holds read locks
// for the duration of the scan, ExecuteDml holds the target table's write
// lock for the whole statement (so invalidations complete before the DML
// call returns). The full protocol, the locking hierarchy and the race
// diagram live in docs/CONCURRENCY.md.
//
// Known limit: refresh_on_invalidate re-executes affected statements on
// the updating thread (which already holds the table write lock); with
// multiple concurrent writer threads, refreshed results of multi-table
// queries may read tables another writer is mutating. Run refresh mode
// with a single writer, as the benchmarks do.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "cache/gps_cache.h"
#include "cache/semantic_index.h"
#include "dup/engine.h"
#include "dup/epochs.h"
#include "middleware/metrics.h"
#include "middleware/result_value.h"
#include "sql/binder.h"
#include "sql/dml.h"
#include "sql/evaluator.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace qc::middleware {

/// Engine counters. Fields are atomics so concurrent Execute() calls
/// update them without locks; the copy returned by
/// CachedQueryEngine::stats() is a relaxed snapshot (counters are read
/// independently, not as one instantaneous cut).
struct QueryEngineStats {
  std::atomic<uint64_t> executions{0};      // Execute() calls
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> db_executions{0};   // misses that went to the database
  std::atomic<uint64_t> uncacheable{0};     // results too large to cache
  std::atomic<uint64_t> stale_discards{0};  // results dropped by the epoch guard
  std::atomic<uint64_t> seq_admit_rejects{0};  // fills refused by the CDC sequence
                                               // gate (cache nodes; docs/CLUSTER.md)
  std::atomic<uint64_t> remote_fills{0};    // misses answered by Options::remote_fetch
  std::atomic<uint64_t> refresh_executions{0};  // eager re-executions (refresh_on_invalidate)

  // Warm-restart accounting (cache.recover_on_open; docs/PERSISTENCE.md):
  // recovered disk entries re-registered with full annotations from their
  // durable tag, re-registered conservatively from the fingerprint's SQL
  // skeleton, or dropped because neither could be rebuilt.
  std::atomic<uint64_t> recovered_registrations{0};
  std::atomic<uint64_t> recovered_conservative{0};
  std::atomic<uint64_t> recovered_dropped{0};

  QueryEngineStats() = default;
  QueryEngineStats(const QueryEngineStats& other) { *this = other; }
  QueryEngineStats& operator=(const QueryEngineStats& other);

  double HitRate() const {
    const uint64_t n = executions.load(std::memory_order_relaxed);
    return n == 0 ? 0.0
                  : static_cast<double>(cache_hits.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }
};

class CachedQueryEngine {
 public:
  /// A miss answered by Options::remote_fetch: the result plus the CDC
  /// stream sequence the upstream read observed (loaded on the storage
  /// node *before* its table read locks, so the result reflects every
  /// update with seq <= observed_seq).
  struct RemoteFill {
    sql::ResultPtr result;
    uint64_t observed_seq = 0;
  };

  struct Options {
    dup::InvalidationPolicy policy = dup::InvalidationPolicy::kValueAware;
    dup::ExtractionOptions extraction;
    cache::GpsCacheConfig cache;

    /// Weighted-DUP staleness budget per cached result (see
    /// dup::DupEngine::Options::obsolescence_threshold). Non-zero values
    /// intentionally serve bounded-stale results.
    double obsolescence_threshold = 0.0;

    /// Applied to every cached result; nullopt = no expiration.
    std::optional<cache::Duration> default_ttl;

    /// When false, query results are executed but never cached — the
    /// "no cache" baseline.
    bool caching_enabled = true;

    /// When false, the engine does NOT subscribe to the database's update
    /// events; the owner must feed dup_engine().OnUpdate() itself. Used by
    /// the cluster layer, where remote nodes receive invalidation traffic
    /// over a (simulated) network rather than synchronously.
    bool subscribe_to_database = true;

    /// Record per-execution latency histograms, split hit vs. miss, plus
    /// a per-update-batch invalidation histogram on the write path (adds
    /// two clock reads per Execute / per batch).
    bool collect_latency_metrics = false;

    /// Paper Fig. 7 step 10 "result discard/update cache": when true,
    /// affected cached results are re-executed and re-stored in place of
    /// being invalidated, keeping the cache warm at the cost of eager
    /// refresh executions on the update path.
    bool refresh_on_invalidate = false;

    /// Cache-node mode (docs/CLUSTER.md): when set, misses are answered by
    /// this hook — typically a QCP/1 QUERY_SEQ round-trip to the storage
    /// node — instead of executing against the local database, and no
    /// local table locks are taken. The returned observed_seq feeds the
    /// sequence-gate admission check below. Combine with
    /// subscribe_to_database = false (invalidations arrive over the CDC
    /// stream, not from the local database).
    std::function<RemoteFill(const sql::BoundQuery&, const std::vector<Value>&)> remote_fetch;

    /// The node's CDC sequence gate (shared with the stream applier). When
    /// set, the guarded Put additionally refuses any fill whose
    /// observed_seq is behind the gate's applied sequence — the fill's
    /// data may predate an invalidation that has already run. Counted in
    /// QueryEngineStats::seq_admit_rejects and cache seq_admit_rejects.
    std::shared_ptr<dup::CdcSequenceGate> seq_gate;

    /// Local-execution counterpart of RemoteFill::observed_seq: called
    /// *before* the table read locks are acquired, returns the last CDC
    /// sequence whose invalidations are fully applied locally (on the
    /// storage node itself: the last published sequence). Unset = fills
    /// observe sequence 0, which the gate refuses once any invalidation
    /// applied — the safe default for nodes that never execute locally.
    std::function<uint64_t()> observe_committed_seq;

    /// Synthetic per-miss penalty modeling a remote persistent store (the
    /// paper's rule server reached DB2 over JDBC; our tables are
    /// in-process). Applied as a busy-wait on every database execution
    /// that Execute() performs; ExecuteUncached (the test oracle) is
    /// exempt. 0 = disabled.
    std::chrono::microseconds simulated_db_latency{0};
  };

  /// The engine subscribes to `db` for update events; `db` must outlive it.
  CachedQueryEngine(storage::Database& db, Options options);

  /// Unsubscribes from the database, so engines may come and go against a
  /// long-lived database (the warm-restart pattern: one engine per process
  /// lifetime over the same store). Quiesce traffic first — destruction is
  /// not synchronized against in-flight queries or DML.
  ~CachedQueryEngine();

  /// Parse + bind once; reuse for repeated execution ("compile time").
  /// Prepared statements are cached per canonical SQL.
  std::shared_ptr<const sql::BoundQuery> Prepare(const std::string& sql);

  struct ExecuteResult {
    sql::ResultPtr result;
    bool cache_hit = false;
  };

  /// Execute a prepared statement with parameters.
  ExecuteResult Execute(const std::shared_ptr<const sql::BoundQuery>& query,
                        const std::vector<Value>& params = {});

  /// Dynamic SQL path: parse, bind, execute (still cached).
  ExecuteResult ExecuteSql(const std::string& sql, const std::vector<Value>& params = {});

  /// Execute a DML statement (INSERT / UPDATE / DELETE) under the target
  /// table's write lock. Mutations flow through the storage layer, so
  /// cached query results are invalidated by the configured DUP policy
  /// before this returns. Returns the number of affected rows.
  uint64_t ExecuteDml(const std::string& sql, const std::vector<Value>& params = {});

  /// Direct, uncached execution (used by tests to cross-check). Takes the
  /// same table read locks as Execute.
  sql::ResultSet ExecuteUncached(const sql::BoundQuery& query,
                                 const std::vector<Value>& params = {}) const;

  QueryEngineStats stats() const { return stats_; }
  cache::CacheStats cache_stats() const {
    cache::CacheStats s = cache_->stats();
    if (semantic_) semantic_->FoldInto(s);
    return s;
  }
  dup::DupStats dup_stats() const { return dup_->stats(); }
  const QueryLatencyMetrics& latency_metrics() const { return latency_; }

  cache::GpsCache& cache() { return *cache_; }
  dup::DupEngine& dup_engine() { return *dup_; }
  storage::Database& database() { return db_; }

 private:
  ExecuteResult ExecuteInternal(const std::shared_ptr<const sql::BoundQuery>& query,
                                const std::vector<Value>& params);

  /// Semantic tier of the lookup ladder. Called on an exact miss, under the
  /// key's miss stripe, with the dependency snapshot already taken. Returns
  /// the answer served from a cached superset, or nullptr to fall through
  /// to the database miss path.
  sql::ResultPtr TrySemanticServe(const std::string& key,
                                  const std::shared_ptr<const sql::BoundQuery>& query,
                                  const std::vector<Value>& params,
                                  const dup::UpdateEpochs::Snapshot& snapshot);

  /// The CDC sequence a locally-executed miss observes: the configured
  /// observe_committed_seq hook, or 0 when unset. Must be called *before*
  /// the table read locks are acquired (the sequence-gate soundness rule,
  /// docs/CLUSTER.md).
  uint64_t ObserveCommittedSeq() const {
    return options_.observe_committed_seq ? options_.observe_committed_seq() : 0;
  }

  /// Shared tail of the miss and semantic-hit paths: ODG registration, the
  /// epoch-guarded Put (with durable tag in disk/hybrid modes), failure
  /// cleanup and accounting, and — on a successful store — registration as
  /// a semantic source. `observed_seq` is the CDC sequence the result's
  /// read observed (RemoteFill::observed_seq / ObserveCommittedSeq); when
  /// Options::seq_gate is set, admission additionally requires
  /// gate.Admits(observed_seq), re-checked under the shard lock like the
  /// epoch snapshot. Returns whether the entry was stored.
  bool StoreResult(const std::string& key, const std::shared_ptr<const sql::BoundQuery>& query,
                   const std::vector<Value>& params, const sql::ResultPtr& result,
                   const dup::UpdateEpochs::Snapshot& snapshot, uint64_t observed_seq);

  /// Warm restart (constructor only): rebuild the ODG registration of one
  /// disk entry recovered by the GPS cache. Prefers the durable tag
  /// (canonical SQL + typed parameters → full RegisterQuery); falls back to
  /// conservative registration from the fingerprint's SQL skeleton; drops
  /// the entry when neither parses/binds (e.g. the table no longer exists)
  /// so nothing cached escapes DUP invalidation.
  void RegisterRecovered(const cache::GpsCache::RecoveredEntry& entry);

  /// Shared locks on every distinct table the statement reads, acquired in
  /// address order (deadlock-free against other readers and one-table
  /// writers).
  std::vector<std::shared_lock<std::shared_mutex>> LockTablesShared(
      const sql::BoundQuery& query) const;

  void SimulatedDbWait() const;

  storage::Database& db_;
  Options options_;
  std::unique_ptr<cache::GpsCache> cache_;
  std::unique_ptr<dup::DupEngine> dup_;
  std::unique_ptr<cache::SemanticIndex> semantic_;  // null when disabled
  storage::Database::BatchSubscription subscription_;

  /// Misses for the same fingerprint are serialized by a striped mutex.
  /// Two unserialized misses for one key can interleave their
  /// register/store/unregister steps so that the loser's cleanup tears
  /// down the winner's ODG registration, leaving a valid cached entry that
  /// no future update can invalidate. The stripe also coalesces redundant
  /// executions of a hot missed key (stampede protection): the second miss
  /// re-checks the cache under the stripe and usually turns into a hit.
  static constexpr size_t kMissStripes = 64;
  mutable std::array<std::mutex, kMissStripes> miss_mutexes_;

  mutable std::mutex prepared_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const sql::BoundQuery>> prepared_;
  QueryEngineStats stats_;
  QueryLatencyMetrics latency_;
};

}  // namespace qc::middleware
