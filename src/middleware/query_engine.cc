#include "middleware/query_engine.h"

namespace qc::middleware {

CachedQueryEngine::CachedQueryEngine(storage::Database& db, Options options)
    : db_(db), options_(std::move(options)) {
  if (!options_.cache.deserializer) {
    options_.cache.deserializer = &ResultValue::Deserialize;
  }
  cache_ = std::make_unique<cache::GpsCache>(options_.cache);

  dup::DupEngine::Options dup_options;
  dup_options.policy = options_.policy;
  dup_options.extraction = options_.extraction;
  dup_options.obsolescence_threshold = options_.obsolescence_threshold;
  dup_ = std::make_unique<dup::DupEngine>(*cache_, dup_options);

  if (options_.refresh_on_invalidate) {
    dup_->SetRefresher([this](const std::string& key) {
      auto registration = dup_->LookupRegistration(key);
      if (!registration) return false;
      auto result = std::make_shared<const sql::ResultSet>(
          sql::Execute(*registration->first, registration->second));
      if (!cache_->Put(key, std::make_shared<ResultValue>(result))) return false;
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.refresh_executions;
      return true;
    });
  }

  if (options_.subscribe_to_database) {
    db_.Subscribe([this](const storage::UpdateEvent& event) {
      if (options_.caching_enabled) dup_->OnUpdate(event);
    });
  }
}

std::shared_ptr<const sql::BoundQuery> CachedQueryEngine::Prepare(const std::string& sql) {
  sql::SelectStmt stmt = sql::Parse(sql);
  const std::string canonical = sql::CanonicalSql(stmt);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = prepared_.find(canonical);
    if (it != prepared_.end()) return it->second;
  }
  auto bound = sql::Bind(std::move(stmt), db_);
  std::lock_guard<std::mutex> lock(mutex_);
  return prepared_.emplace(canonical, std::move(bound)).first->second;
}

CachedQueryEngine::ExecuteResult CachedQueryEngine::Execute(
    const std::shared_ptr<const sql::BoundQuery>& query, const std::vector<Value>& params) {
  if (!options_.collect_latency_metrics) return ExecuteInternal(query, params);
  const auto start = std::chrono::steady_clock::now();
  ExecuteResult result = ExecuteInternal(query, params);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  (result.cache_hit ? latency_.hits : latency_.misses)
      .Record(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed));
  return result;
}

CachedQueryEngine::ExecuteResult CachedQueryEngine::ExecuteInternal(
    const std::shared_ptr<const sql::BoundQuery>& query, const std::vector<Value>& params) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.executions;
  }

  if (!options_.caching_enabled) {
    if (options_.simulated_db_latency.count() > 0) {
      const auto deadline = std::chrono::steady_clock::now() + options_.simulated_db_latency;
      while (std::chrono::steady_clock::now() < deadline) {
      }
    }
    auto result = std::make_shared<sql::ResultSet>(sql::Execute(*query, params));
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.db_executions;
    return {std::move(result), false};
  }

  const std::string key = sql::Fingerprint(query->stmt(), params);

  if (cache::CacheValuePtr cached = cache_->Get(key)) {
    auto value = std::static_pointer_cast<const ResultValue>(cached);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.cache_hits;
    return {value->result(), true};
  }

  // (4) database access
  if (options_.simulated_db_latency.count() > 0) {
    const auto deadline = std::chrono::steady_clock::now() + options_.simulated_db_latency;
    while (std::chrono::steady_clock::now() < deadline) {
      // busy-wait: sleep granularity would distort microsecond penalties
    }
  }
  auto result = std::make_shared<const sql::ResultSet>(sql::Execute(*query, params));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.db_executions;
  }

  // (3) result into cache + ODG construction. Register *before* Put: if Put
  // immediately evicts the entry (budget pressure), the removal listener
  // then cleanly unregisters it again.
  dup_->RegisterQuery(key, query, params);
  if (!cache_->Put(key, std::make_shared<ResultValue>(result), options_.default_ttl)) {
    dup_->UnregisterQuery(key);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.uncacheable;
  }
  return {std::move(result), false};
}

CachedQueryEngine::ExecuteResult CachedQueryEngine::ExecuteSql(const std::string& sql,
                                                               const std::vector<Value>& params) {
  return Execute(Prepare(sql), params);
}

uint64_t CachedQueryEngine::ExecuteDml(const std::string& sql, const std::vector<Value>& params) {
  sql::AnyStatement stmt = sql::ParseStatement(sql);
  if (stmt.kind != sql::AnyStatement::Kind::kDml) {
    throw BindError("ExecuteDml expects INSERT/UPDATE/DELETE; use Execute for SELECT");
  }
  return sql::ExecuteDml(stmt.dml, db_, params);
}

sql::ResultSet CachedQueryEngine::ExecuteUncached(const sql::BoundQuery& query,
                                                  const std::vector<Value>& params) const {
  return sql::Execute(query, params);
}

QueryEngineStats CachedQueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace qc::middleware
