#include "middleware/query_engine.h"

#include <algorithm>

namespace qc::middleware {

QueryEngineStats& QueryEngineStats::operator=(const QueryEngineStats& other) {
  executions.store(other.executions.load(std::memory_order_relaxed), std::memory_order_relaxed);
  cache_hits.store(other.cache_hits.load(std::memory_order_relaxed), std::memory_order_relaxed);
  db_executions.store(other.db_executions.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  uncacheable.store(other.uncacheable.load(std::memory_order_relaxed), std::memory_order_relaxed);
  stale_discards.store(other.stale_discards.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  seq_admit_rejects.store(other.seq_admit_rejects.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  remote_fills.store(other.remote_fills.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  refresh_executions.store(other.refresh_executions.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  recovered_registrations.store(other.recovered_registrations.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
  recovered_conservative.store(other.recovered_conservative.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  recovered_dropped.store(other.recovered_dropped.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  return *this;
}

CachedQueryEngine::CachedQueryEngine(storage::Database& db, Options options)
    : db_(db), options_(std::move(options)) {
  if (!options_.cache.deserializer) {
    options_.cache.deserializer = &ResultValue::Deserialize;
  }
  cache_ = std::make_unique<cache::GpsCache>(options_.cache);

  dup::DupEngine::Options dup_options;
  dup_options.policy = options_.policy;
  dup_options.extraction = options_.extraction;
  dup_options.obsolescence_threshold = options_.obsolescence_threshold;
  dup_ = std::make_unique<dup::DupEngine>(*cache_, dup_options);

  if (options_.cache.semantic_lookup && options_.caching_enabled) {
    semantic_ = std::make_unique<cache::SemanticIndex>();
    // The DupEngine constructor installed a removal listener that tears
    // down the key's ODG registration; widen it so cache removals also
    // drop the key's semantic-source entry. (Serving from a stale entry
    // would still be epoch-checked — this is hygiene, not correctness.)
    cache_->SetRemovalListener([this](const std::string& key, cache::RemovalCause) {
      dup_->UnregisterQuery(key);
      semantic_->Remove(key);
    });
  }

  // Warm restart: every disk entry the cache recovered must re-enter the
  // ODG before the engine serves traffic, or post-restart updates would
  // silently miss it. Runs before the database subscription, so recovery
  // cannot race with invalidation fan-out.
  for (const cache::GpsCache::RecoveredEntry& entry : cache_->recovered_entries()) {
    RegisterRecovered(entry);
  }

  if (options_.refresh_on_invalidate) {
    dup_->SetRefresher([this](const std::string& key) {
      auto registration = dup_->LookupRegistration(key);
      if (!registration) return false;
      // Runs on the updating thread, which already holds the mutated
      // table's write lock — no read locks here (they would self-deadlock).
      // Snapshot before re-executing, as on the miss path. The triggering
      // update's epochs were bumped before refreshers run, so this snapshot
      // already covers it; a *later* update would have to take the table
      // write lock this thread holds, so the snapshot stays current for
      // the registration below.
      dup::UpdateEpochs::Snapshot snapshot = dup_->SnapshotDependencies(registration->first);
      auto result = std::make_shared<const sql::ResultSet>(
          sql::Execute(*registration->first, registration->second));
      if (!cache_->Put(key, std::make_shared<ResultValue>(result))) return false;
      if (semantic_) {
        // Replacing a key's value does not fire the removal listener, so
        // the semantic entry must be swapped to the refreshed rows here.
        semantic_->Remove(key);
        semantic_->TryRegister(key, *registration->first, registration->second, result, snapshot);
      }
      stats_.refresh_executions.fetch_add(1, std::memory_order_relaxed);
      return true;
    });
  }

  if (options_.subscribe_to_database) {
    // Statement-level subscription: a multi-row DML statement arrives as
    // one batch, so epoch stamping, key dedup and shard locking are paid
    // once per statement (single-row mutations arrive as batches of one).
    subscription_ = db_.SubscribeBatch([this](const storage::UpdateBatch& batch) {
      if (!options_.caching_enabled) return;
      if (!options_.collect_latency_metrics) {
        dup_->OnBatch(batch);
        return;
      }
      const auto start = std::chrono::steady_clock::now();
      dup_->OnBatch(batch);
      latency_.invalidations.Record(std::chrono::steady_clock::now() - start);
    });
  }
}

CachedQueryEngine::~CachedQueryEngine() {
  if (subscription_) db_.Unsubscribe(subscription_);
}

void CachedQueryEngine::RegisterRecovered(const cache::GpsCache::RecoveredEntry& entry) {
  // Tier 1: the durable tag round-trips the statement and its typed
  // parameters, giving an exact re-registration (annotated edges intact:
  // Policies II/III/IV behave as before the restart).
  if (!entry.durable_tag.empty()) {
    try {
      std::string canonical_sql;
      std::vector<Value> params;
      DecodeQueryTag(entry.durable_tag, &canonical_sql, &params);
      auto query = Prepare(canonical_sql);
      dup_->RegisterQuery(entry.key, query, params);
      stats_.recovered_registrations.fetch_add(1, std::memory_order_relaxed);
      return;
    } catch (const std::exception&) {
      // Corrupt/stale tag — fall through to the conservative tier.
    }
  }

  // Tier 2: the fingerprint key itself is the canonical SQL plus an
  // optional " /* param values */" suffix; the skeleton still names every
  // table and column the result depends on, so conservative registration
  // (unannotated edges: any change fires) keeps the entry transparent to
  // invalidation even without parameter values.
  try {
    std::string canonical_sql = entry.key;
    if (canonical_sql.size() >= 2 && canonical_sql.ends_with("*/")) {
      const size_t open = canonical_sql.rfind(" /*");
      if (open != std::string::npos) canonical_sql.resize(open);
    }
    auto query = Prepare(canonical_sql);
    dup_->RegisterQueryConservative(entry.key, query);
    stats_.recovered_conservative.fetch_add(1, std::memory_order_relaxed);
    return;
  } catch (const std::exception&) {
    // Unparseable or unbindable (e.g. the table no longer exists).
  }

  // Tier 3: nothing to hang invalidation on — drop the entry rather than
  // serve a result no update could ever invalidate.
  cache_->Invalidate(entry.key);
  stats_.recovered_dropped.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const sql::BoundQuery> CachedQueryEngine::Prepare(const std::string& sql) {
  sql::SelectStmt stmt = sql::Parse(sql);
  const std::string canonical = sql::CanonicalSql(stmt);
  {
    std::lock_guard<std::mutex> lock(prepared_mutex_);
    auto it = prepared_.find(canonical);
    if (it != prepared_.end()) return it->second;
  }
  auto bound = sql::Bind(std::move(stmt), db_);
  std::lock_guard<std::mutex> lock(prepared_mutex_);
  return prepared_.emplace(canonical, std::move(bound)).first->second;
}

CachedQueryEngine::ExecuteResult CachedQueryEngine::Execute(
    const std::shared_ptr<const sql::BoundQuery>& query, const std::vector<Value>& params) {
  if (!options_.collect_latency_metrics) return ExecuteInternal(query, params);
  const auto start = std::chrono::steady_clock::now();
  ExecuteResult result = ExecuteInternal(query, params);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  (result.cache_hit ? latency_.hits : latency_.misses)
      .Record(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed));
  return result;
}

std::vector<std::shared_lock<std::shared_mutex>> CachedQueryEngine::LockTablesShared(
    const sql::BoundQuery& query) const {
  std::vector<const storage::Table*> tables = query.tables();
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());  // self-joins
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(tables.size());
  for (const storage::Table* table : tables) locks.push_back(table->ReadLock());
  return locks;
}

void CachedQueryEngine::SimulatedDbWait() const {
  if (options_.simulated_db_latency.count() <= 0) return;
  const auto deadline = std::chrono::steady_clock::now() + options_.simulated_db_latency;
  while (std::chrono::steady_clock::now() < deadline) {
    // busy-wait: sleep granularity would distort microsecond penalties
  }
}

CachedQueryEngine::ExecuteResult CachedQueryEngine::ExecuteInternal(
    const std::shared_ptr<const sql::BoundQuery>& query, const std::vector<Value>& params) {
  stats_.executions.fetch_add(1, std::memory_order_relaxed);

  if (!options_.caching_enabled) {
    SimulatedDbWait();
    sql::ResultPtr result;
    {
      auto locks = LockTablesShared(*query);
      result = std::make_shared<const sql::ResultSet>(sql::Execute(*query, params));
    }
    stats_.db_executions.fetch_add(1, std::memory_order_relaxed);
    return {std::move(result), false};
  }

  const std::string key = sql::Fingerprint(query->stmt(), params);

  // With the default CLOCK eviction policy this hit probe runs under a
  // *shared* shard lock (docs/CONCURRENCY.md, "Lock-light hit path"):
  // concurrent hits on the same shard no longer serialize against each
  // other, only against that shard's fills and invalidations.
  if (cache::CacheValuePtr cached = cache_->Get(key)) {
    auto value = std::static_pointer_cast<const ResultValue>(cached);
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return {value->result(), true};
  }

  // Miss. Serialize with other misses for the same key (see miss_mutexes_)
  // and re-check: a coalesced miss usually finds the winner's entry.
  std::unique_lock<std::mutex> miss_lock(
      miss_mutexes_[std::hash<std::string>{}(key) % kMissStripes]);
  if (cache::CacheValuePtr cached = cache_->Get(key)) {
    auto value = std::static_pointer_cast<const ResultValue>(cached);
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return {value->result(), true};
  }

  // Snapshot the dependency epochs *before* the semantic probe and the
  // database read: an update stamped between here and the guarded Put (or
  // the semantic tier's re-validation) means the result may have been
  // computed from pre-update data, so it must not be cached — or, on the
  // semantic path, served (docs/CONCURRENCY.md, docs/SEMANTIC.md).
  dup::UpdateEpochs::Snapshot snapshot = dup_->SnapshotDependencies(query);

  // Semantic tier: answer from a cached superset result when one subsumes
  // the incoming predicate (no table lock, no base-table scan).
  if (semantic_) {
    if (sql::ResultPtr served = TrySemanticServe(key, query, params, snapshot)) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      return {std::move(served), true};
    }
  }

  // (4) database access. Cache-node mode delegates the read to the
  // storage node over the remote_fetch hook — no local table locks, and
  // the fill carries the CDC sequence the upstream read observed. Local
  // execution loads the committed sequence *before* taking the read locks:
  // every update with seq <= observed is then reflected in the read AND
  // its invalidations have applied, the invariant the sequence-gate
  // admission check relies on (docs/CLUSTER.md).
  SimulatedDbWait();
  sql::ResultPtr result;
  uint64_t observed_seq;
  if (options_.remote_fetch) {
    RemoteFill fill = options_.remote_fetch(*query, params);
    result = std::move(fill.result);
    observed_seq = fill.observed_seq;
    stats_.remote_fills.fetch_add(1, std::memory_order_relaxed);
  } else {
    observed_seq = ObserveCommittedSeq();
    auto locks = LockTablesShared(*query);
    result = std::make_shared<const sql::ResultSet>(sql::Execute(*query, params));
  }
  stats_.db_executions.fetch_add(1, std::memory_order_relaxed);

  // (3) result into cache + ODG construction.
  StoreResult(key, query, params, result, snapshot, observed_seq);
  // Either way the caller gets this result: it reflects every update
  // acknowledged before this query began, which is all a racing client may
  // assume.
  return {std::move(result), false};
}

sql::ResultPtr CachedQueryEngine::TrySemanticServe(
    const std::string& key, const std::shared_ptr<const sql::BoundQuery>& query,
    const std::vector<Value>& params, const dup::UpdateEpochs::Snapshot& snapshot) {
  semantic_->RecordProbe();
  std::optional<cache::SemanticIndex::Shape> shape = cache::SemanticIndex::Analyze(*query, params);
  if (!shape) {
    semantic_->RecordShapeReject();
    return nullptr;
  }
  std::shared_ptr<cache::SemanticIndex::SourceEntry> source = semantic_->FindSuperset(*shape);
  if (!source) return nullptr;

  const auto start = std::chrono::steady_clock::now();
  sql::ResultSet filtered = cache::SemanticIndex::ExecuteResidual(*source, *query, params);
  semantic_->RecordResidualNanos(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - start)
          .count()));

  // Epoch re-validation, the semantic analogue of the guarded Put. The
  // load-bearing check is the *source entry's* creation-time snapshot: an
  // update that changes any slot the source statement observed stamps the
  // epoch *before* its invalidation tears the entry down and before the
  // DML call acknowledges, so a still-current entry snapshot proves the
  // cached rows reflect every acknowledged update — even if the probe
  // found the entry inside the stamp-to-teardown window. The incoming
  // statement's own snapshot (taken before the probe) is checked too; it
  // guards the derived-result admission below.
  if (!source->snapshot.Current() || !snapshot.Current()) {
    semantic_->RecordEpochReject();
    semantic_->Remove(source->key);  // hygiene; teardown also removes it
    return nullptr;  // fall through to a plain database miss
  }
  semantic_->RecordHit();

  auto result = std::make_shared<const sql::ResultSet>(std::move(filtered));
  // Admit the derived result under its own fingerprint: the next identical
  // query is an exact hit, and the derived entry can itself become a
  // (narrower) semantic source. The derived rows are a subset of the
  // source's, so they observe exactly the sequence the source's read did.
  StoreResult(key, query, params, result, snapshot, source->observed_seq);
  return result;
}

bool CachedQueryEngine::StoreResult(const std::string& key,
                                    const std::shared_ptr<const sql::BoundQuery>& query,
                                    const std::vector<Value>& params, const sql::ResultPtr& result,
                                    const dup::UpdateEpochs::Snapshot& snapshot,
                                    uint64_t observed_seq) {
  // Register *before* Put: if Put immediately evicts the entry (budget
  // pressure), the removal listener then cleanly unregisters it again; if
  // an update invalidates the key between the two steps, the epoch guard
  // rejects the Put. On a cache node the same ordering closes the CDC
  // window: a record applied after this registration but before the Put
  // either bumps an observed epoch (snapshot check) or advances the
  // sequence gate past observed_seq (gate check) — and a record applied
  // after the Put finds the entry registered and tears it down.
  dup_->RegisterQuery(key, query, params);
  const dup::CdcSequenceGate* gate = options_.seq_gate.get();
  cache::GpsCache::AdmitDecision decision = cache::GpsCache::AdmitDecision::kAdmit;
  // The durable tag rides along on disk spills so a warm restart can
  // rebuild this registration exactly; memory-only caches never spill, so
  // skip the encoding work there.
  std::string durable_tag;
  if (options_.cache.mode != cache::CacheMode::kMemory) {
    durable_tag = EncodeQueryTag(sql::CanonicalSql(query->stmt()), params);
  }
  const bool stored = cache_->Put(
      key, std::make_shared<ResultValue>(result), options_.default_ttl,
      cache::GpsCache::AdmitDecider([&snapshot, gate, observed_seq, &decision] {
        // Both checks run under the shard's exclusive lock: the epoch
        // snapshot orders this fill against local invalidations, the
        // sequence gate against the CDC stream's applied prefix.
        if (!snapshot.Current()) {
          decision = cache::GpsCache::AdmitDecision::kRejectStale;
        } else if (gate != nullptr && !gate->Admits(observed_seq)) {
          decision = cache::GpsCache::AdmitDecision::kRejectSequence;
        } else {
          decision = cache::GpsCache::AdmitDecision::kAdmit;
        }
        return decision;
      }),
      std::move(durable_tag));
  if (!stored) {
    dup_->UnregisterQuery(key);
    switch (decision) {
      case cache::GpsCache::AdmitDecision::kRejectStale:
        stats_.stale_discards.fetch_add(1, std::memory_order_relaxed);
        break;
      case cache::GpsCache::AdmitDecision::kRejectSequence:
        stats_.seq_admit_rejects.fetch_add(1, std::memory_order_relaxed);
        break;
      case cache::GpsCache::AdmitDecision::kAdmit:  // admitted but not stored
        stats_.uncacheable.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    return false;
  }
  if (semantic_) semantic_->TryRegister(key, *query, params, result, snapshot, observed_seq);
  return true;
}

CachedQueryEngine::ExecuteResult CachedQueryEngine::ExecuteSql(const std::string& sql,
                                                               const std::vector<Value>& params) {
  return Execute(Prepare(sql), params);
}

uint64_t CachedQueryEngine::ExecuteDml(const std::string& sql, const std::vector<Value>& params) {
  sql::AnyStatement stmt = sql::ParseStatement(sql);
  if (stmt.kind != sql::AnyStatement::Kind::kDml) {
    throw BindError("ExecuteDml expects INSERT/UPDATE/DELETE; use Execute for SELECT");
  }
  // The whole statement — scan, mutation, synchronous invalidation fan-out
  // — runs under the target table's write lock, so once ExecuteDml
  // returns, the update is fully acknowledged: epochs stamped, affected
  // cache entries invalidated or refreshed.
  storage::Table& table = db_.GetTable(stmt.dml.table);
  auto lock = table.WriteLock();
  return sql::ExecuteDml(stmt.dml, db_, params);
}

sql::ResultSet CachedQueryEngine::ExecuteUncached(const sql::BoundQuery& query,
                                                  const std::vector<Value>& params) const {
  auto locks = LockTablesShared(query);
  return sql::Execute(query, params);
}

}  // namespace qc::middleware
