// Web-server accelerator built on the GPS cache + DUP (paper §3: "The GPS
// cache has been used to improve performance in ABR and in a Web server
// accelerator"; DUP "has proved to be extremely useful for caching dynamic
// Web pages").
//
// Pages are templates composed of *fragments* (shared includes: headers,
// price lists, personalization blocks). Fragments may include other
// fragments. Rendering assembles the transitive include tree; rendered
// pages are cached in a GPS cache. The ODG here is the multi-level graph
// of the paper's Fig. 2 — fragment → fragment → page — built automatically
// from the template structure, and a fragment update propagates
// transitively to every cached page whose content embeds it.
//
// Edge weights model the paper's obsolescence idea: a fragment include can
// be marked "minor" (low weight), and pages may be configured to tolerate
// a bounded amount of accumulated minor churn before re-rendering.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/gps_cache.h"
#include "odg/graph.h"

namespace qc::accel {

struct AccelStats {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t renders = 0;
  uint64_t invalidated_pages = 0;
  uint64_t tolerated_updates = 0;  // absorbed by obsolescence budgets

  double HitRatePercent() const {
    return requests == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / static_cast<double>(requests);
  }
};

class PageServer {
 public:
  struct Options {
    cache::GpsCacheConfig cache;

    /// Pages re-render once accumulated include-weight of changes EXCEEDS
    /// this budget; 0 = any change invalidates (exact freshness).
    double obsolescence_budget = 0.0;
  };

  PageServer();  // default options
  explicit PageServer(Options options);

  /// Define or redefine a fragment. Fragment bodies may reference other
  /// fragments with `{{name}}` placeholders; the include graph — and hence
  /// the ODG — is derived from the body text automatically. Updating a
  /// fragment's body invalidates (or ages, under a budget) every cached
  /// page that transitively includes it.
  void SetFragment(const std::string& name, const std::string& body, double weight = 1.0);

  /// Define a page template (same placeholder syntax). Pages are the
  /// cacheable objects.
  void DefinePage(const std::string& path, const std::string& body);

  /// Serve a page: cache hit or assemble-and-cache. Throws Error for an
  /// unknown path or a missing/cyclic fragment reference.
  std::string Serve(const std::string& path);

  /// Number of cached pages right now.
  size_t cached_pages();

  AccelStats stats() const { return stats_; }
  std::string DumpOdg() const { return odg_.ToDot(); }

 private:
  static std::vector<std::string> ExtractIncludes(const std::string& body);
  std::string Render(const std::string& body, int depth) const;
  void RebuildEdges(const std::string& vertex_name, const std::string& body, double weight,
                    odg::VertexKind kind);

  Options options_;
  std::unique_ptr<cache::GpsCache> cache_;
  odg::Graph odg_;
  std::map<std::string, std::string> fragments_;      // name -> body
  std::map<std::string, double> fragment_weights_;
  std::map<std::string, std::string> pages_;          // path -> template body
  AccelStats stats_;
};

}  // namespace qc::accel
