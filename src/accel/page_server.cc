#include "accel/page_server.h"

#include "common/error.h"

namespace qc::accel {

namespace {

constexpr int kMaxIncludeDepth = 16;

std::string FragmentVertex(const std::string& name) { return "frag:" + name; }
std::string PageVertex(const std::string& path) { return "page:" + path; }

}  // namespace

PageServer::PageServer() : PageServer(Options()) {}

PageServer::PageServer(Options options) : options_(std::move(options)) {
  cache_ = std::make_unique<cache::GpsCache>(options_.cache);
}

std::vector<std::string> PageServer::ExtractIncludes(const std::string& body) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = body.find("{{", pos)) != std::string::npos) {
    const size_t end = body.find("}}", pos + 2);
    if (end == std::string::npos) throw Error("unterminated {{include}} in template");
    out.push_back(body.substr(pos + 2, end - pos - 2));
    pos = end + 2;
  }
  return out;
}

void PageServer::RebuildEdges(const std::string& vertex_name, const std::string& body,
                              double /*weight*/, odg::VertexKind kind) {
  const odg::VertexId vertex = odg_.GetOrAdd(vertex_name, kind);
  odg_.RemoveInEdges(vertex);
  for (const std::string& include : ExtractIncludes(body)) {
    const odg::VertexId source =
        odg_.GetOrAdd(FragmentVertex(include), odg::VertexKind::kIntermediate);
    auto weight_it = fragment_weights_.find(include);
    odg_.AddEdge(source, vertex, weight_it == fragment_weights_.end() ? 1.0 : weight_it->second);
  }
}

void PageServer::SetFragment(const std::string& name, const std::string& body, double weight) {
  const bool existed = fragments_.count(name) > 0;
  fragments_[name] = body;
  fragment_weights_[name] = weight;
  RebuildEdges(FragmentVertex(name), body, weight, odg::VertexKind::kIntermediate);

  if (!existed) return;  // first definition changes nothing that is cached

  // DUP: the fragment changed; walk the include graph to the affected
  // pages. Under a budget, pages age by the strongest dependency path and
  // only refresh once the budget is exceeded (paper Fig. 2).
  const odg::VertexId source = *odg_.Find(FragmentVertex(name));
  if (options_.obsolescence_budget > 0) {
    for (odg::VertexId v : odg_.PropagateWeighted(source, odg::ChangeSpec::Generic())) {
      const std::string& vertex_name = odg_.NameOf(v);
      if (vertex_name.rfind("page:", 0) != 0) continue;
      if (odg_.ObsolescenceOf(v) > options_.obsolescence_budget) {
        const std::string path = vertex_name.substr(5);
        if (cache_->Invalidate(path)) ++stats_.invalidated_pages;
        odg_.ResetObsolescence(v);
      } else {
        ++stats_.tolerated_updates;
      }
    }
    return;
  }
  for (odg::VertexId v : odg_.Propagate(source, odg::ChangeSpec::Generic())) {
    const std::string& vertex_name = odg_.NameOf(v);
    if (vertex_name.rfind("page:", 0) != 0) continue;
    if (cache_->Invalidate(vertex_name.substr(5))) ++stats_.invalidated_pages;
  }
}

void PageServer::DefinePage(const std::string& path, const std::string& body) {
  pages_[path] = body;
  RebuildEdges(PageVertex(path), body, 1.0, odg::VertexKind::kObject);
  if (cache_->Invalidate(path)) ++stats_.invalidated_pages;  // template changed
}

std::string PageServer::Render(const std::string& body, int depth) const {
  if (depth > kMaxIncludeDepth) {
    throw Error("include depth exceeded (cycle in fragment graph?)");
  }
  std::string out;
  out.reserve(body.size());
  size_t pos = 0;
  while (pos < body.size()) {
    const size_t open = body.find("{{", pos);
    if (open == std::string::npos) {
      out.append(body, pos, std::string::npos);
      break;
    }
    out.append(body, pos, open - pos);
    const size_t close = body.find("}}", open + 2);
    if (close == std::string::npos) throw Error("unterminated {{include}}");
    const std::string name = body.substr(open + 2, close - open - 2);
    auto it = fragments_.find(name);
    if (it == fragments_.end()) throw Error("unknown fragment: " + name);
    out += Render(it->second, depth + 1);
    pos = close + 2;
  }
  return out;
}

std::string PageServer::Serve(const std::string& path) {
  ++stats_.requests;
  if (cache::CacheValuePtr hit = cache_->Get(path)) {
    ++stats_.hits;
    return std::static_pointer_cast<const cache::StringValue>(hit)->data();
  }
  auto it = pages_.find(path);
  if (it == pages_.end()) throw Error("unknown page: " + path);
  std::string html = Render(it->second, 0);
  ++stats_.renders;
  cache_->Put(path, std::make_shared<cache::StringValue>(html));
  return html;
}

size_t PageServer::cached_pages() { return cache_->entry_count(); }

}  // namespace qc::accel
