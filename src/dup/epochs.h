// Update-epoch tracking for race-free cache registration.
//
// The miss path of the middleware is miss -> execute -> register/store,
// and it runs concurrently with the update path mutate -> invalidate. An
// update that lands *between* the database read and the cache store would
// silently cache a stale result: the invalidation ran before the key was
// cached, so nothing removes it afterwards. UpdateEpochs closes that race
// with versioned dependency slots:
//
//   * the DUP engine Bump()s one epoch counter per dependency slot
//     ("TABLE#column" for attribute updates, "TABLE" for row
//     insert/delete) *before* it computes and applies invalidations;
//   * the query path Observe()s the epochs of every slot its statement
//     depends on *before* executing against the database, producing a
//     Snapshot;
//   * at store time, Snapshot::Current() is evaluated under the cache
//     shard's lock (GpsCache admission guard). If any observed epoch
//     advanced, the result may have been computed from pre-update data
//     and is discarded instead of cached.
//
// See docs/CONCURRENCY.md for the full protocol and the race diagram.
//
// @thread_safety UpdateEpochs is internally synchronized: Bump/Observe may
// be called from any thread. Snapshot::Current() is wait-free (atomic
// loads only) and is safe to call while holding unrelated locks — it never
// takes the UpdateEpochs mutex. A Snapshot must not outlive the
// UpdateEpochs instance it was observed from.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace qc::dup {

class UpdateEpochs {
 public:
  /// The epochs of one query's dependency slots, as observed at snapshot
  /// time. Cheap to move; copyable.
  class Snapshot {
   public:
    /// True iff no observed slot's epoch has advanced since the snapshot
    /// was taken. Wait-free.
    bool Current() const {
      for (const Entry& entry : entries_) {
        if (entry.slot->load(std::memory_order_acquire) != entry.observed) return false;
      }
      return true;
    }

    size_t size() const { return entries_.size(); }

   private:
    friend class UpdateEpochs;
    struct Entry {
      const std::atomic<uint64_t>* slot;
      uint64_t observed;
    };
    std::vector<Entry> entries_;
  };

  /// Advance the epoch of `slot`, creating it at 0 first if new. Called by
  /// the update path before any invalidation derived from the same event.
  void Bump(const std::string& slot);

  /// Append `slot`'s current epoch to `snapshot` (creating the slot at 0
  /// if it has never been bumped — a query may depend on a column no
  /// update has touched yet).
  void Observe(Snapshot& snapshot, const std::string& slot);

 private:
  std::atomic<uint64_t>& SlotRef(const std::string& slot);

  mutable std::mutex mutex_;  // guards the map; the counters themselves are atomic
  // unique_ptr gives the atomics stable addresses: Snapshot entries remain
  // valid as the map rehashes. Slots are never removed.
  std::unordered_map<std::string, std::unique_ptr<std::atomic<uint64_t>>> slots_;
};

/// The distributed counterpart of UpdateEpochs for cache nodes fed by a
/// CDC invalidation stream (docs/CLUSTER.md). Epochs order *local*
/// invalidations against local reads; on a cache node the data is read
/// remotely, so freshness is ordered by the storage node's stream sequence
/// instead: a remote fill carries the committed sequence it observed
/// (loaded on the storage node *before* its read locks), and the CDC
/// applier Advance()s this gate *before* it stamps epochs and applies the
/// record's invalidations. At admission time — under the cache shard's
/// exclusive lock, composed with the epoch snapshot check — Admits()
/// refuses any fill whose observed sequence is behind the applied one: an
/// invalidation the fill's data may predate has already run, so nothing
/// would ever remove the entry. Also the resubscribe-gap fence: after a
/// missed stream window the applier flushes the cache and Advance()s to
/// the server's current sequence, which retroactively refuses every fill
/// that observed a pre-gap sequence. The scalar comparison over-rejects
/// (a higher applied sequence from an unrelated table also refuses) but
/// never under-rejects; see docs/CLUSTER.md for the soundness argument.
///
/// @thread_safety Internally synchronized (single atomic). Advance is a
/// fetch-max so out-of-order calls are safe; Admits is wait-free and may
/// run under the cache shard lock like Snapshot::Current().
class CdcSequenceGate {
 public:
  /// Record that every invalidation up to `seq` has been applied locally.
  /// Monotonic: regressions are ignored.
  void Advance(uint64_t seq) {
    uint64_t cur = applied_.load(std::memory_order_relaxed);
    while (cur < seq &&
           !applied_.compare_exchange_weak(cur, seq, std::memory_order_release,
                                           std::memory_order_relaxed)) {
    }
  }

  /// True iff a fill that observed `observed_seq` on the storage node may
  /// still be admitted: no invalidation newer than its read has applied.
  bool Admits(uint64_t observed_seq) const {
    return applied_.load(std::memory_order_acquire) <= observed_seq;
  }

  uint64_t applied() const { return applied_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> applied_{0};
};

}  // namespace qc::dup
