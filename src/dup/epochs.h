// Update-epoch tracking for race-free cache registration.
//
// The miss path of the middleware is miss -> execute -> register/store,
// and it runs concurrently with the update path mutate -> invalidate. An
// update that lands *between* the database read and the cache store would
// silently cache a stale result: the invalidation ran before the key was
// cached, so nothing removes it afterwards. UpdateEpochs closes that race
// with versioned dependency slots:
//
//   * the DUP engine Bump()s one epoch counter per dependency slot
//     ("TABLE#column" for attribute updates, "TABLE" for row
//     insert/delete) *before* it computes and applies invalidations;
//   * the query path Observe()s the epochs of every slot its statement
//     depends on *before* executing against the database, producing a
//     Snapshot;
//   * at store time, Snapshot::Current() is evaluated under the cache
//     shard's lock (GpsCache admission guard). If any observed epoch
//     advanced, the result may have been computed from pre-update data
//     and is discarded instead of cached.
//
// See docs/CONCURRENCY.md for the full protocol and the race diagram.
//
// @thread_safety UpdateEpochs is internally synchronized: Bump/Observe may
// be called from any thread. Snapshot::Current() is wait-free (atomic
// loads only) and is safe to call while holding unrelated locks — it never
// takes the UpdateEpochs mutex. A Snapshot must not outlive the
// UpdateEpochs instance it was observed from.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace qc::dup {

class UpdateEpochs {
 public:
  /// The epochs of one query's dependency slots, as observed at snapshot
  /// time. Cheap to move; copyable.
  class Snapshot {
   public:
    /// True iff no observed slot's epoch has advanced since the snapshot
    /// was taken. Wait-free.
    bool Current() const {
      for (const Entry& entry : entries_) {
        if (entry.slot->load(std::memory_order_acquire) != entry.observed) return false;
      }
      return true;
    }

    size_t size() const { return entries_.size(); }

   private:
    friend class UpdateEpochs;
    struct Entry {
      const std::atomic<uint64_t>* slot;
      uint64_t observed;
    };
    std::vector<Entry> entries_;
  };

  /// Advance the epoch of `slot`, creating it at 0 first if new. Called by
  /// the update path before any invalidation derived from the same event.
  void Bump(const std::string& slot);

  /// Append `slot`'s current epoch to `snapshot` (creating the slot at 0
  /// if it has never been bumped — a query may depend on a column no
  /// update has touched yet).
  void Observe(Snapshot& snapshot, const std::string& slot);

 private:
  std::atomic<uint64_t>& SlotRef(const std::string& slot);

  mutable std::mutex mutex_;  // guards the map; the counters themselves are atomic
  // unique_ptr gives the atomics stable addresses: Snapshot entries remain
  // valid as the map rehashes. Slots are never removed.
  std::unordered_map<std::string, std::unique_ptr<std::atomic<uint64_t>>> slots_;
};

}  // namespace qc::dup
