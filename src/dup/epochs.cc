#include "dup/epochs.h"

namespace qc::dup {

std::atomic<uint64_t>& UpdateEpochs::SlotRef(const std::string& slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    it = slots_.emplace(slot, std::make_unique<std::atomic<uint64_t>>(0)).first;
  }
  return *it->second;
}

void UpdateEpochs::Bump(const std::string& slot) {
  SlotRef(slot).fetch_add(1, std::memory_order_acq_rel);
}

void UpdateEpochs::Observe(Snapshot& snapshot, const std::string& slot) {
  const std::atomic<uint64_t>& counter = SlotRef(slot);
  snapshot.entries_.push_back({&counter, counter.load(std::memory_order_acquire)});
}

}  // namespace qc::dup
