// The DUP engine: connects storage update events, the ODG, and the GPS
// cache (paper §4). It owns the object dependence graph, registers cached
// query results as object vertices with automatically extracted edges, and
// translates every UpdateEvent into the invalidation set the configured
// policy prescribes. It also stamps per-dependency update epochs
// (dup/epochs.h) that the middleware uses to discard query results whose
// execution raced with an update (docs/CONCURRENCY.md).
//
// @thread_safety Internally synchronized: every public method may be
// called from any thread. The engine mutex is a shared_mutex: the hot
// affected-key computation runs under a *shared* lock (it only reads the
// ODG and the registrations) unless a tracer is installed or the
// obsolescence budget is enabled, both of which mutate per-event state and
// take the exclusive lock. Registration paths always take the exclusive
// lock; statistics live behind a separate leaf mutex (stats_mutex_, never
// held while acquiring anything else). OnUpdate/OnBatch invalidate (or
// refresh) cache entries *outside* the engine lock; the refresher and the
// cache removal listener may therefore re-enter the engine. The tracer
// runs under the exclusive engine lock and must not call back in. Lock
// order: the engine mutex may be acquired while a Table write lock is held
// (events are delivered synchronously from the mutating thread) and is
// never held while acquiring a cache shard lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/gps_cache.h"
#include "dup/epochs.h"
#include "dup/extractor.h"
#include "dup/policy.h"
#include "dup/row_index.h"
#include "odg/graph.h"
#include "storage/events.h"

namespace qc::dup {

struct DupStats {
  uint64_t update_events = 0;      // update/insert/delete row events seen
  uint64_t update_batches = 0;     // statement-level batches processed
  uint64_t invalidations = 0;      // query results invalidated (Policies II+)

  /// Predicate-index effectiveness: probes answered from the interval
  /// index (per-column flip probes plus per-table row probes) vs. events
  /// that had to fall back to a linear edge/filter scan (NULL-sided
  /// updates, wildcard-LIKE filters).
  uint64_t predicate_index_probes = 0;
  uint64_t predicate_index_fallbacks = 0;

  /// Affected-key counts attributed to the triggering source, before
  /// row-aware/obsolescence refinement: "col:TABLE.COLUMN" for attribute
  /// updates, "insert:TABLE"/"delete:TABLE" for row events. Answers the
  /// operator question "which writes churn my cache?".
  std::map<std::string, uint64_t> affected_by_source;
  uint64_t full_flushes = 0;       // whole-cache clears (Policy I)
  uint64_t row_aware_saves = 0;    // invalidations skipped by Policy IV refinement
  uint64_t tolerated_changes = 0;  // events absorbed by the obsolescence budget
  uint64_t refreshes = 0;          // invalidations converted into cache updates
  uint64_t registered_queries = 0; // currently registered object vertices

  double InvalidationsPerEvent() const {
    return update_events == 0 ? 0.0
                              : static_cast<double>(invalidations) /
                                    static_cast<double>(update_events);
  }
};

class DupEngine {
 public:
  struct Options {
    InvalidationPolicy policy = InvalidationPolicy::kValueAware;
    ExtractionOptions extraction;

    /// Weighted-DUP obsolescence tolerance (paper Fig. 2: "in some cases
    /// it is acceptable to keep around a cached object which is not too
    /// obsolete"). Each firing dependency event adds one unit of
    /// obsolescence to an affected object; the object is only invalidated
    /// once its accumulated obsolescence EXCEEDS the threshold. 0 (the
    /// default) invalidates on the first event — exact consistency.
    /// Positive thresholds deliberately trade staleness for hit rate.
    double obsolescence_threshold = 0.0;

    /// Answer value-aware propagation from the predicate-interval indexes
    /// (the per-column flip index in the ODG and the per-table row-event
    /// index) instead of scanning every edge/registration linearly. The
    /// indexed and linear paths compute identical affected-key sets; the
    /// switch exists for benchmarking and differential testing.
    bool use_predicate_index = true;
  };

  DupEngine(cache::GpsCache& cache, Options options);

  InvalidationPolicy policy() const { return options_.policy; }

  /// Register a cached query result under `key` (its fingerprint).
  /// Builds (or reuses) the statement's dependency template and adds the
  /// object vertex plus its annotated edges to the ODG. The engine keeps
  /// `query` and `params` for row-aware refinement.
  void RegisterQuery(const std::string& key, std::shared_ptr<const sql::BoundQuery> query,
                     const std::vector<Value>& params);

  /// Conservative registration for warm-restart recovery: the statement is
  /// known (re-parsed from its persisted canonical SQL) but its parameter
  /// values are not, so no edge annotation can be instantiated. Every
  /// referenced column gets an *unannotated* edge (any change fires) and
  /// every referenced table a table-existence edge, which over-invalidates
  /// but never under-invalidates — a recovered entry stays transparent
  /// under Policies I/II/III even when only its SQL skeleton survived the
  /// crash. Row-aware refinement and refresh are disabled for such
  /// registrations (both need the parameters).
  void RegisterQueryConservative(const std::string& key,
                                 std::shared_ptr<const sql::BoundQuery> query);

  /// Drop the object vertex for `key` (cache removal). Idempotent.
  void UnregisterQuery(const std::string& key);

  /// Observe the update epochs of every dependency slot of `query`: one
  /// slot per referenced table.column (attribute updates) plus one per
  /// referenced table (inserts/deletes), plus the global slot under
  /// Policy I (any update flushes everything). Call *before* executing the
  /// statement against the database; pass the snapshot to the cache's
  /// guarded Put so a result computed from pre-update data is discarded
  /// instead of cached. See docs/CONCURRENCY.md.
  UpdateEpochs::Snapshot SnapshotDependencies(
      const std::shared_ptr<const sql::BoundQuery>& query);

  /// Paper Fig. 7, step 10 is "result discard/update cache": affected
  /// results may be *refreshed* instead of discarded. When a refresher is
  /// installed, the engine calls it (outside its lock) for every affected
  /// key in place of cache invalidation; the refresher re-executes and
  /// re-stores the result (returning true) or declines (false → the key
  /// is invalidated as usual).
  using Refresher = std::function<bool(const std::string& key)>;
  void SetRefresher(Refresher refresher);

  /// Registration lookup for refreshers: the statement and parameters
  /// cached under `key`, if registered.
  std::optional<std::pair<std::shared_ptr<const sql::BoundQuery>, std::vector<Value>>>
  LookupRegistration(const std::string& key) const;

  /// Storage mutation hook: subscribe this to the Database. Translates the
  /// event into cache invalidations according to the policy (delegates to
  /// OnBatch with a batch of one).
  void OnUpdate(const storage::UpdateEvent& event);

  /// Statement-level mutation hook (Database::SubscribeBatch): processes a
  /// whole statement's events with per-statement costs paid once — epochs
  /// are stamped once per touched column, affected keys are deduplicated
  /// across rows, and the cache is invalidated with one shard-lock
  /// acquisition per touched shard (GpsCache::InvalidateBatch).
  void OnBatch(const storage::UpdateBatch& batch);

  /// Diagnostic tracing: invoked once per (event, invalidated key) with a
  /// human-readable reason ("update BENCH.KSEQ 41000 -> 7 fired annotated
  /// edge", "insert into RULEUSETABLE passed every column filter", ...).
  /// Reasons are only materialized while a tracer is installed. The tracer
  /// runs under the engine lock: it must not call back into this engine.
  using InvalidationTracer = std::function<void(const std::string& key, const std::string& reason)>;
  void SetTracer(InvalidationTracer tracer);

  DupStats stats() const;

  /// Snapshot of the ODG (diagnostics; also exercised by tests/examples).
  std::string DumpGraph() const;
  size_t GraphVertexCount() const;
  size_t GraphEdgeCount() const;

  /// Test-only access to the ODG (e.g. to build multi-level graphs that
  /// registration alone cannot produce). Callers must not race it with
  /// concurrent engine use.
  odg::Graph& graph_for_test() { return graph_; }

 private:
  struct Registered {
    odg::VertexId vertex;
    std::shared_ptr<const sql::BoundQuery> query;
    std::vector<Value> params;
    std::shared_ptr<const DependencyTemplate> deps;
    /// Instantiated annotations, parallel to deps->columns (empty slots for
    /// opaque columns). Used for the conjunctive insert/delete check.
    std::vector<std::optional<odg::EdgeAnnotation>> annotations;

    /// Accumulated obsolescence since this result was cached (only grows
    /// when Options::obsolescence_threshold > 0).
    double obsolescence = 0.0;

    /// Registered without parameter values (RegisterQueryConservative):
    /// annotations are absent, row-aware refinement must not evaluate the
    /// WHERE clause, and the refresher cannot re-execute it.
    bool conservative = false;
  };

  static std::string ColumnVertexName(const std::string& table, const std::string& column);
  static std::string TableVertexName(const std::string& table);
  static std::string ColumnEpochSlot(const std::string& table_key, uint32_t column);

  /// Advance the update epochs the batch touches — once per distinct
  /// changed column (plus the table slot when the batch carries row
  /// events), not once per row. Must run before any invalidation derived
  /// from the batch: in-flight executions that read pre-event data then
  /// fail their store-time admission check. Sound because admission only
  /// needs "the epoch advanced", never "how many times".
  void StampEpochsBatch(const storage::UpdateBatch& batch);

  /// Find-or-build the statement's dependency template. Requires mutex_.
  std::shared_ptr<const DependencyTemplate> TemplateForLocked(const sql::BoundQuery& query);

  /// Shared body of the two registration entry points. Requires mutex_.
  void RegisterLocked(const std::string& key, std::shared_ptr<const sql::BoundQuery> query,
                      const std::vector<Value>& params, bool conservative);

  /// Collect the fingerprints the batch invalidates under the policy,
  /// deduplicated across the batch's rows. Takes the engine lock shared
  /// unless a tracer or the obsolescence budget needs exclusive access.
  std::vector<std::string> AffectedKeysBatch(const storage::UpdateBatch& batch);
  bool RowAwareKeeps(const Registered& reg, const storage::UpdateEvent& event) const;

  /// Drop `key` from the row-event index of every table in `deps`.
  /// Requires the exclusive lock.
  void RemoveFromRowIndexes(const std::string& key, const DependencyTemplate& deps);

  /// Value-aware insert/delete check (paper §4.2's Platinum example): the
  /// created/deleted row must pass EVERY annotated column filter the query
  /// places on this table (opaque columns cannot reject). Conjunction is
  /// sound because each filter is a relaxation of the WHERE clause.
  bool RowCanAffect(const Registered& reg, const std::string& table_key,
                    const storage::Row& row) const;

  cache::GpsCache& cache_;
  Options options_;

  mutable std::shared_mutex mutex_;
  odg::Graph graph_;
  std::unordered_map<std::string, Registered> registered_;
  // "Compile-time" template cache, keyed by canonical statement text.
  std::unordered_map<std::string, std::shared_ptr<const DependencyTemplate>> templates_;
  // Upper-cased table name → column index → column vertex; column vertices
  // are created lazily as registrations reference them and never removed.
  std::unordered_map<std::string, std::unordered_map<uint32_t, odg::VertexId>> column_vertices_;
  std::unordered_map<std::string, odg::VertexId> table_vertices_;
  // Upper-cased table name → keys of registered queries referencing it
  // (drives the per-query conjunctive insert/delete check).
  std::unordered_map<std::string, std::unordered_set<std::string>> table_queries_;
  // Upper-cased table name → row-event index over the registered keys that
  // reference the table (insert/delete probes). Maintained only when
  // Options::use_predicate_index.
  std::unordered_map<std::string, TableRowIndex> row_indexes_;
  InvalidationTracer tracer_;
  // Mirrors "tracer_ != nullptr" so AffectedKeysBatch can pick its lock
  // mode before acquiring the lock that guards tracer_.
  std::atomic<bool> tracer_set_{false};
  Refresher refresher_;
  // Leaf lock for stats_: taken while mutex_ is held (shared or exclusive),
  // never the other way around.
  mutable std::mutex stats_mutex_;
  DupStats stats_;
  UpdateEpochs epochs_;  // internally synchronized; not guarded by mutex_
};

}  // namespace qc::dup
