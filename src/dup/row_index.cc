#include "dup/row_index.h"

#include <algorithm>
#include <sstream>

namespace qc::dup {

namespace {

using Interval = ValueSet::Interval;

bool EmptyInterval(const Interval& iv) {
  if (!iv.lo || !iv.hi) return false;
  if (*iv.lo < *iv.hi) return false;
  if (*iv.lo == *iv.hi) return !(iv.lo_closed && iv.hi_closed);
  return true;  // lo > hi
}

// Sort order on lower bounds: -inf first; at equal values a closed bound
// starts earlier than an open one.
bool LoLess(const Interval& x, const Interval& y) {
  if (!x.lo) return y.lo.has_value();
  if (!y.lo) return false;
  if (*x.lo != *y.lo) return *x.lo < *y.lo;
  return x.lo_closed && !y.lo_closed;
}

// Does x's upper bound end before y's? +inf last; at equal values an open
// bound ends earlier than a closed one.
bool HiLess(const Interval& x, const Interval& y) {
  if (!x.hi) return false;
  if (!y.hi) return true;
  if (*x.hi != *y.hi) return *x.hi < *y.hi;
  return !x.hi_closed && y.hi_closed;
}

// With cur.lo <= nxt.lo: do the intervals overlap or touch (no value gap
// between cur's end and nxt's start)? Touching requires one closed side:
// [1,2) ∪ [2,3] coalesces, (-inf,2) ∪ (2,inf) does not.
bool MergeableWith(const Interval& cur, const Interval& nxt) {
  if (!cur.hi || !nxt.lo) return true;
  if (*cur.hi > *nxt.lo) return true;
  if (*cur.hi < *nxt.lo) return false;
  return cur.hi_closed || nxt.lo_closed;
}

}  // namespace

ValueSet ValueSet::All(bool with_null) {
  ValueSet s;
  s.intervals_.push_back(Interval{});
  s.null_in_ = with_null;
  return s;
}

ValueSet ValueSet::Point(Value v) {
  ValueSet s;
  s.intervals_.push_back(Interval{v, true, std::move(v), true});
  return s;
}

ValueSet ValueSet::Below(Value b, bool closed) {
  ValueSet s;
  s.intervals_.push_back(Interval{std::nullopt, false, std::move(b), closed});
  return s;
}

ValueSet ValueSet::Above(Value a, bool closed) {
  ValueSet s;
  s.intervals_.push_back(Interval{std::move(a), closed, std::nullopt, false});
  return s;
}

ValueSet ValueSet::Range(Value a, Value b) {
  ValueSet s;
  if (b < a) return s;
  s.intervals_.push_back(Interval{std::move(a), true, std::move(b), true});
  return s;
}

ValueSet ValueSet::Union(const ValueSet& a, const ValueSet& b) {
  ValueSet out;
  out.null_in_ = a.null_in_ || b.null_in_;
  std::vector<Interval> all;
  all.reserve(a.intervals_.size() + b.intervals_.size());
  all.insert(all.end(), a.intervals_.begin(), a.intervals_.end());
  all.insert(all.end(), b.intervals_.begin(), b.intervals_.end());
  std::sort(all.begin(), all.end(), LoLess);
  for (Interval& iv : all) {
    if (EmptyInterval(iv)) continue;
    if (!out.intervals_.empty() && MergeableWith(out.intervals_.back(), iv)) {
      Interval& cur = out.intervals_.back();
      if (HiLess(cur, iv)) {
        cur.hi = iv.hi;
        cur.hi_closed = iv.hi_closed;
      }
    } else {
      out.intervals_.push_back(std::move(iv));
    }
  }
  return out;
}

ValueSet ValueSet::Complement(const ValueSet& s) {
  ValueSet out;
  out.null_in_ = !s.null_in_;
  std::optional<Value> cur_lo;  // unset = -inf
  bool cur_lo_closed = false;
  bool open_ended = true;  // a trailing gap reaches +inf
  for (const Interval& iv : s.intervals_) {
    if (iv.lo) {
      Interval gap{cur_lo, cur_lo_closed, *iv.lo, !iv.lo_closed};
      if (!EmptyInterval(gap)) out.intervals_.push_back(std::move(gap));
    }
    if (!iv.hi) {
      open_ended = false;
      break;
    }
    cur_lo = *iv.hi;
    cur_lo_closed = !iv.hi_closed;
  }
  if (open_ended) {
    out.intervals_.push_back(Interval{cur_lo, cur_lo_closed, std::nullopt, false});
  }
  return out;
}

ValueSet ValueSet::Intersect(const ValueSet& a, const ValueSet& b) {
  // De Morgan over the (values ∪ {NULL}) universe.
  return Complement(Union(Complement(a), Complement(b)));
}

bool ValueSet::Contains(const Value& v) const {
  if (v.is_null()) return null_in_;
  for (const Interval& iv : intervals_) {
    if (iv.lo && (v < *iv.lo || (v == *iv.lo && !iv.lo_closed))) continue;
    if (iv.hi && (v > *iv.hi || (v == *iv.hi && !iv.hi_closed))) continue;
    return true;
  }
  return false;
}

bool ValueSet::IsUniverse() const {
  return null_in_ && intervals_.size() == 1 && !intervals_[0].lo && !intervals_[0].hi;
}

std::string ValueSet::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  if (null_in_) {
    os << "NULL";
    first = false;
  }
  for (const Interval& iv : intervals_) {
    if (!first) os << ", ";
    first = false;
    os << (iv.lo && iv.lo_closed ? "[" : "(");
    os << (iv.lo ? iv.lo->ToString() : "-inf") << "," << (iv.hi ? iv.hi->ToString() : "+inf");
    os << (iv.hi && iv.hi_closed ? "]" : ")");
  }
  os << "}";
  return os.str();
}

namespace {

struct TriSets {
  ValueSet t;  // values where the predicate is definitely true
  ValueSet f;  // values where it is definitely false
};

ValueSet NullOnly() { return ValueSet::Complement(ValueSet::All(false)); }

ValueSet NonNullComplement(const ValueSet& s) {
  return ValueSet::Intersect(ValueSet::Complement(s), ValueSet::All(false));
}

// T/F sets mirroring Atom::Eval exactly (see odg/annotation.cc RawEval):
// everything not in T and not in F evaluates to SQL unknown.
std::optional<TriSets> AtomSets(const odg::Atom& atom) {
  TriSets out;  // polarity-free; swapped at the end when negated
  switch (atom.kind) {
    case odg::Atom::Kind::kIsNull:
      out.t = NullOnly();
      out.f = ValueSet::All(false);
      break;
    case odg::Atom::Kind::kCmp: {
      if (atom.a.is_null()) break;  // always unknown: T = F = ∅
      switch (atom.cmp_op) {
        case sql::BinaryOp::kEq:
          out.t = ValueSet::Point(atom.a);
          out.f = NonNullComplement(out.t);
          break;
        case sql::BinaryOp::kNe:
          out.f = ValueSet::Point(atom.a);
          out.t = NonNullComplement(out.f);
          break;
        case sql::BinaryOp::kLt:
          out.t = ValueSet::Below(atom.a, false);
          out.f = ValueSet::Above(atom.a, true);
          break;
        case sql::BinaryOp::kLe:
          out.t = ValueSet::Below(atom.a, true);
          out.f = ValueSet::Above(atom.a, false);
          break;
        case sql::BinaryOp::kGt:
          out.t = ValueSet::Above(atom.a, false);
          out.f = ValueSet::Below(atom.a, true);
          break;
        case sql::BinaryOp::kGe:
          out.t = ValueSet::Above(atom.a, true);
          out.f = ValueSet::Below(atom.a, false);
          break;
        default:
          break;  // RawEval returns unknown for any other operator
      }
      break;
    }
    case odg::Atom::Kind::kBetween:
      if (atom.a.is_null() || atom.b.is_null()) break;  // always unknown
      if (atom.b < atom.a) {
        out.f = ValueSet::All(false);  // empty range: false for every value
        break;
      }
      out.t = ValueSet::Range(atom.a, atom.b);
      out.f = ValueSet::Union(ValueSet::Below(atom.a, false), ValueSet::Above(atom.b, false));
      break;
    case odg::Atom::Kind::kIn: {
      bool saw_null = false;
      for (const Value& item : atom.set) {
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        out.t = ValueSet::Union(out.t, ValueSet::Point(item));
      }
      out.f = saw_null ? ValueSet::Empty() : NonNullComplement(out.t);
      break;
    }
    case odg::Atom::Kind::kLike: {
      if (atom.a.is_null()) break;  // always unknown
      if (!atom.a.is_string()) {
        out.f = ValueSet::All(false);  // RawEval: false for every non-null value
        break;
      }
      const std::string& pattern = atom.a.as_string();
      if (pattern.find_first_of("%_") != std::string::npos) {
        return std::nullopt;  // a wildcard match is not an interval set
      }
      // No wildcards: LIKE is string equality, and in the Value total
      // order only the pattern itself compares equal to it.
      out.t = ValueSet::Point(atom.a);
      out.f = NonNullComplement(out.t);
      break;
    }
  }
  if (atom.negated) std::swap(out.t, out.f);
  return out;
}

// Kleene combinators, mirroring ColumnPredicate::Eval: And is true iff all
// children are true and false iff any child is false; Or dually; Not swaps.
std::optional<TriSets> CompileTri(const odg::ColumnPredicate& p) {
  using Kind = odg::ColumnPredicate::Kind;
  switch (p.kind) {
    case Kind::kTrue:
      return TriSets{ValueSet::All(true), ValueSet::Empty()};
    case Kind::kAtom:
      return AtomSets(p.atom);
    case Kind::kNot: {
      if (p.children.empty()) return std::nullopt;
      auto child = CompileTri(p.children[0]);
      if (!child) return std::nullopt;
      std::swap(child->t, child->f);
      return child;
    }
    case Kind::kAnd:
    case Kind::kOr: {
      const bool conjunction = p.kind == Kind::kAnd;
      TriSets acc{conjunction ? ValueSet::All(true) : ValueSet::Empty(),
                  conjunction ? ValueSet::Empty() : ValueSet::All(true)};
      for (const odg::ColumnPredicate& c : p.children) {
        auto child = CompileTri(c);
        if (!child) return std::nullopt;
        if (conjunction) {
          acc.t = ValueSet::Intersect(acc.t, child->t);
          acc.f = ValueSet::Union(acc.f, child->f);
        } else {
          acc.t = ValueSet::Union(acc.t, child->t);
          acc.f = ValueSet::Intersect(acc.f, child->f);
        }
      }
      return acc;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<ValueSet> CompileAcceptSet(const odg::ColumnPredicate& p) {
  auto tri = CompileTri(p);
  if (!tri) return std::nullopt;
  return std::move(tri->t);
}

void TableRowIndex::AddKey(const std::string& key,
                           std::vector<std::pair<uint32_t, ValueSet>> gates) {
  RemoveKey(key);
  KeyId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = static_cast<KeyId>(keys_.size());
    keys_.emplace_back();
  }
  KeyInfo& info = keys_[id];
  info.name = key;
  info.live = true;
  by_name_.emplace(key, id);
  for (auto& [column, set] : gates) {
    if (set.IsUniverse()) continue;  // cannot reject any row: not a gate
    ++info.gate_count;
    PostGate(id, column, set);
  }
  if (info.gate_count == 0) zero_gate_.push_back(id);
}

void TableRowIndex::AddLinearKey(const std::string& key) {
  RemoveKey(key);
  KeyId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = static_cast<KeyId>(keys_.size());
    keys_.emplace_back();
  }
  KeyInfo& info = keys_[id];
  info.name = key;
  info.live = true;
  info.linear = true;
  by_name_.emplace(key, id);
  linear_.push_back(id);
}

void TableRowIndex::PostGate(KeyId id, uint32_t column, const ValueSet& set) {
  ColumnIndex& col = columns_[column];
  KeyInfo& info = keys_[id];
  auto post = [&](Posting::Kind kind) {
    Posting p;
    p.kind = kind;
    p.column = column;
    info.postings.push_back(std::move(p));
    return &info.postings.back();
  };
  col.gated.push_back(id);
  post(Posting::Kind::kGated);
  if (set.contains_null()) {
    col.null_ok.push_back(id);
    post(Posting::Kind::kNull);
  }
  for (const Interval& iv : set.intervals()) {
    if (!iv.lo && !iv.hi) {
      col.all.push_back(id);
      post(Posting::Kind::kAll);
    } else if (!iv.lo) {
      Posting* p = post(Posting::Kind::kBelow);
      p->ray_it = col.below.emplace(*iv.hi, RayEntry{id, iv.hi_closed});
    } else if (!iv.hi) {
      Posting* p = post(Posting::Kind::kAbove);
      p->ray_it = col.above.emplace(*iv.lo, RayEntry{id, iv.lo_closed});
    } else if (*iv.lo == *iv.hi) {
      // Singletons are stored closed on both sides (empties are dropped).
      Posting* p = post(Posting::Kind::kPoint);
      p->point = *iv.lo;
      col.points[*iv.lo].push_back(id);
    } else {
      Posting* p = post(Posting::Kind::kFinite);
      p->finite_it = col.finite.emplace(*iv.lo, FiniteEntry{id, iv.lo_closed, *iv.hi, iv.hi_closed});
    }
  }
}

void TableRowIndex::RemoveKey(const std::string& key) {
  auto it = by_name_.find(key);
  if (it == by_name_.end()) return;
  const KeyId id = it->second;
  by_name_.erase(it);
  KeyInfo& info = keys_[id];
  for (const Posting& p : info.postings) {
    auto cit = columns_.find(p.column);
    if (cit == columns_.end()) continue;
    ColumnIndex& col = cit->second;
    switch (p.kind) {
      case Posting::Kind::kGated:
        std::erase(col.gated, id);
        break;
      case Posting::Kind::kNull:
        std::erase(col.null_ok, id);
        break;
      case Posting::Kind::kAll:
        std::erase(col.all, id);
        break;
      case Posting::Kind::kPoint: {
        auto pit = col.points.find(p.point);
        if (pit != col.points.end()) {
          std::erase(pit->second, id);
          if (pit->second.empty()) col.points.erase(pit);
        }
        break;
      }
      case Posting::Kind::kBelow:
        col.below.erase(p.ray_it);
        break;
      case Posting::Kind::kAbove:
        col.above.erase(p.ray_it);
        break;
      case Posting::Kind::kFinite:
        col.finite.erase(p.finite_it);
        break;
    }
  }
  if (info.linear) std::erase(linear_, id);
  if (!info.linear && info.gate_count == 0) std::erase(zero_gate_, id);
  info = KeyInfo{};
  free_ids_.push_back(id);
}

void TableRowIndex::Probe(const std::vector<Value>& row, std::vector<std::string>& fired,
                          std::vector<std::string>& linear) const {
  probes_.fetch_add(1, std::memory_order_relaxed);
  if (!linear_.empty()) {
    linear_fallbacks_.fetch_add(linear_.size(), std::memory_order_relaxed);
    for (KeyId id : linear_) linear.push_back(keys_[id].name);
  }
  for (KeyId id : zero_gate_) fired.push_back(keys_[id].name);

  std::unordered_map<KeyId, uint32_t> credits;
  for (const auto& [column, col] : columns_) {
    if (col.gated.empty()) continue;
    if (column >= row.size()) {
      // Column missing from the row image: it cannot reject (mirrors the
      // engine's direct conjunctive check).
      for (KeyId id : col.gated) ++credits[id];
      continue;
    }
    const Value& v = row[column];
    if (v.is_null()) {
      for (KeyId id : col.null_ok) ++credits[id];
      continue;
    }
    for (KeyId id : col.all) ++credits[id];
    if (auto pit = col.points.find(v); pit != col.points.end()) {
      for (KeyId id : pit->second) ++credits[id];
    }
    for (auto rit = col.below.lower_bound(v); rit != col.below.end(); ++rit) {
      if (rit->first == v && !rit->second.closed) continue;  // open at v
      ++credits[rit->second.key];
    }
    for (auto rit = col.above.begin(); rit != col.above.end(); ++rit) {
      if (v < rit->first) break;
      if (rit->first == v && !rit->second.closed) continue;
      ++credits[rit->second.key];
    }
    for (auto fit = col.finite.begin(); fit != col.finite.end(); ++fit) {
      if (v < fit->first) break;
      const FiniteEntry& e = fit->second;
      if (fit->first == v && !e.lo_closed) continue;
      if (e.hi < v || (e.hi == v && !e.hi_closed)) continue;
      ++credits[e.key];
    }
  }
  for (const auto& [id, count] : credits) {
    // Each gate's pieces are disjoint, so a gate credits at most once:
    // count == gate_count means every gate accepted.
    if (count == keys_[id].gate_count) fired.push_back(keys_[id].name);
  }
}

}  // namespace qc::dup
