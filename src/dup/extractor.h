// Automatic dependency extraction: the paper's second DUP innovation.
//
// From a bound SELECT statement we derive a DependencyTemplate — the ODG
// skeleton of §4.2. For a static query the template fully determines the
// graph edges and annotations at "compile time" (statement preparation).
// For a parameterized query the skeleton still fixes which columns the
// result depends on and the *shape* of every annotation; Instantiate()
// fills the parameter constants in at run time, which is the paper's
// "run-time work limited to setting a parameter".
//
// Per referenced column the template records:
//   * opaque        — the column's value feeds the result directly
//                     (projection, aggregate input, GROUP BY key) or it is
//                     compared against another column (join, A.x > A.y).
//                     Opaque columns get *unannotated* edges: any change
//                     fires (paper Fig. 4's A.z, B.y edges).
//   * atoms         — separable single-column predicates, for the
//                     value-aware update flip check.
//   * filter        — the NNF relaxation of the WHERE clause onto this
//                     column, for value-aware insert/delete checks.
//
// @thread_safety ExtractDependencies is a pure function of its inputs and
// may run concurrently. DependencyTemplate instances are immutable after
// construction and shared across threads behind shared_ptr<const> (the DUP
// engine's template cache, epoch snapshots).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "odg/annotation.h"
#include "sql/binder.h"

namespace qc::dup {

/// A scalar operand that is either a constant or a statement parameter.
struct OperandTemplate {
  bool is_param = false;
  Value constant;
  uint32_t param_index = 0;

  Value Resolve(const std::vector<Value>& params) const;
};

/// An atom whose operands may be parameters.
struct AtomTemplate {
  odg::Atom::Kind kind = odg::Atom::Kind::kCmp;
  sql::BinaryOp cmp_op = sql::BinaryOp::kEq;
  OperandTemplate a;
  OperandTemplate b;
  std::vector<OperandTemplate> set;
  bool negated = false;

  odg::Atom Instantiate(const std::vector<Value>& params) const;
};

/// Mirrors odg::ColumnPredicate with parameterized atoms.
struct FilterTemplate {
  enum class Kind { kTrue, kAtom, kAnd, kOr };
  Kind kind = Kind::kTrue;
  AtomTemplate atom;
  std::vector<FilterTemplate> children;

  static FilterTemplate True() { return {}; }
  odg::ColumnPredicate Instantiate(const std::vector<Value>& params) const;
};

struct ColumnDependencyTemplate {
  int32_t table_slot = 0;
  uint32_t column_index = 0;
  std::string table_name;   // resolved table (not alias)
  std::string column_name;
  bool opaque = false;
  std::vector<AtomTemplate> atoms;  // meaningful when !opaque
  FilterTemplate filter;            // meaningful when !opaque

  /// Concrete edge annotation; only valid for non-opaque columns.
  odg::EdgeAnnotation Instantiate(const std::vector<Value>& params) const;
};

struct DependencyTemplate {
  std::vector<ColumnDependencyTemplate> columns;

  /// Distinct underlying tables the statement references.
  std::vector<std::string> tables;

  /// Tables (by name) on which the query depends but has no column
  /// dependency at all — e.g. SELECT COUNT(*) FROM T with no WHERE. Such
  /// queries need a table-existence edge so inserts/deletes reach them.
  std::vector<std::string> tables_needing_existence_edge;

  /// Per slot: columns whose values feed the result (projection, aggregate
  /// args, GROUP BY). Used by the row-aware policy to decide whether an
  /// update to a row that matches before and after can alter the result.
  std::vector<std::vector<uint32_t>> result_columns_per_slot;

  bool single_table() const { return tables.size() == 1; }
};

struct ExtractionOptions {
  /// Include plain projected columns (and `*` expansions) as opaque
  /// dependencies. True for materialized result caching (cached values
  /// must track the projected cells). False for ABR's reference-style
  /// results, where the cache stores which rules match and attribute reads
  /// go to the live objects (paper Fig. 5 shows only WHERE columns).
  bool include_projection = true;

  /// Include aggregate argument columns (K1K in SUM(K1K)) as opaque
  /// dependencies. True is sound for materialized aggregates. The paper's
  /// ODGs omit them (Fig. 8 has no K1K vertex for Q3A), accepting aggregate
  /// values that lag updates to non-queried attributes; the figure
  /// benchmarks run with false to match. GROUP BY keys are always
  /// dependencies in both modes (paper §5, Q5 discussion).
  bool include_aggregate_args = true;

  /// Both fidelity-relevant switches off: the dependency set the paper's
  /// ODGs use (WHERE columns + GROUP BY keys only).
  static ExtractionOptions PaperFidelity() {
    ExtractionOptions options;
    options.include_projection = false;
    options.include_aggregate_args = false;
    return options;
  }
};

/// Build the dependency template for `query` ("compile time").
std::shared_ptr<const DependencyTemplate> ExtractDependencies(
    const sql::BoundQuery& query, const ExtractionOptions& options = {});

}  // namespace qc::dup
