#include "dup/engine.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"
#include "sql/evaluator.h"
#include "sql/fingerprint.h"

namespace qc::dup {

const char* PolicyName(InvalidationPolicy policy) {
  switch (policy) {
    case InvalidationPolicy::kNone: return "TTL-only (no invalidation)";
    case InvalidationPolicy::kFlushAll: return "Policy I (flush all)";
    case InvalidationPolicy::kValueUnaware: return "Policy II (value-unaware DUP)";
    case InvalidationPolicy::kValueAware: return "Policy III (value-aware DUP)";
    case InvalidationPolicy::kRowAware: return "Policy IV (row-aware DUP)";
  }
  return "?";
}

DupEngine::DupEngine(cache::GpsCache& cache, Options options)
    : cache_(cache), options_(std::move(options)) {
  graph_.SetPredicateIndexEnabled(options_.use_predicate_index);
  // Keep the ODG consistent with cache contents: evictions, expirations and
  // replacements remove the object vertex as well.
  cache_.SetRemovalListener(
      [this](const std::string& key, cache::RemovalCause) { UnregisterQuery(key); });
}

std::string DupEngine::ColumnVertexName(const std::string& table, const std::string& column) {
  return "col:" + ToUpper(table) + "." + ToUpper(column);
}

std::string DupEngine::TableVertexName(const std::string& table) {
  return "tab:" + ToUpper(table);
}

std::string DupEngine::ColumnEpochSlot(const std::string& table_key, uint32_t column) {
  return table_key + "#" + std::to_string(column);
}

std::shared_ptr<const DependencyTemplate> DupEngine::TemplateForLocked(
    const sql::BoundQuery& query) {
  // "Compile time": one dependency template per canonical statement.
  const std::string canonical = sql::CanonicalSql(query.stmt());
  if (auto it = templates_.find(canonical); it != templates_.end()) return it->second;
  auto deps = ExtractDependencies(query, options_.extraction);
  templates_.emplace(canonical, deps);
  return deps;
}

UpdateEpochs::Snapshot DupEngine::SnapshotDependencies(
    const std::shared_ptr<const sql::BoundQuery>& query) {
  std::shared_ptr<const DependencyTemplate> deps;
  {
    std::lock_guard<std::shared_mutex> lock(mutex_);
    deps = TemplateForLocked(*query);
  }
  UpdateEpochs::Snapshot snapshot;
  for (const ColumnDependencyTemplate& col : deps->columns) {
    epochs_.Observe(snapshot, ColumnEpochSlot(ToUpper(col.table_name), col.column_index));
  }
  for (const std::string& table : deps->tables) {
    epochs_.Observe(snapshot, ToUpper(table));
  }
  if (options_.policy == InvalidationPolicy::kFlushAll) {
    // Any update flushes the whole cache, so every in-flight execution
    // must observe every event.
    epochs_.Observe(snapshot, "*");
  }
  return snapshot;
}

void DupEngine::StampEpochsBatch(const storage::UpdateBatch& batch) {
  const std::string table_key = ToUpper(std::string(batch.table));
  std::unordered_set<uint32_t> columns;
  bool row_events = false;
  for (const storage::UpdateEvent& event : batch) {
    if (event.kind == storage::UpdateEvent::Kind::kUpdate) {
      for (const storage::AttributeChange& change : event.changes) {
        columns.insert(change.column);
      }
    } else {
      row_events = true;
    }
  }
  for (uint32_t column : columns) epochs_.Bump(ColumnEpochSlot(table_key, column));
  if (row_events) epochs_.Bump(table_key);
  epochs_.Bump("*");
}

void DupEngine::RegisterQuery(const std::string& key,
                              std::shared_ptr<const sql::BoundQuery> query,
                              const std::vector<Value>& params) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  RegisterLocked(key, std::move(query), params, /*conservative=*/false);
}

void DupEngine::RegisterQueryConservative(const std::string& key,
                                          std::shared_ptr<const sql::BoundQuery> query) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  RegisterLocked(key, std::move(query), {}, /*conservative=*/true);
}

void DupEngine::RemoveFromRowIndexes(const std::string& key, const DependencyTemplate& deps) {
  for (const std::string& table : deps.tables) {
    auto it = row_indexes_.find(ToUpper(table));
    if (it != row_indexes_.end()) it->second.RemoveKey(key);
  }
}

void DupEngine::RegisterLocked(const std::string& key,
                               std::shared_ptr<const sql::BoundQuery> query,
                               const std::vector<Value>& params, bool conservative) {
  // Replace any stale registration (e.g. a re-executed query after
  // invalidation raced with an eviction notification).
  if (auto it = registered_.find(key); it != registered_.end()) {
    if (graph_.IsLive(it->second.vertex)) graph_.RemoveVertex(it->second.vertex);
    for (const std::string& table : it->second.deps->tables) {
      table_queries_[ToUpper(table)].erase(key);
    }
    RemoveFromRowIndexes(key, *it->second.deps);
    registered_.erase(it);
  }

  std::shared_ptr<const DependencyTemplate> deps = TemplateForLocked(*query);

  const odg::VertexId object = graph_.AddVertex(key, odg::VertexKind::kObject);
  std::vector<std::optional<odg::EdgeAnnotation>> annotations;
  annotations.reserve(deps->columns.size());
  for (const ColumnDependencyTemplate& col : deps->columns) {
    const odg::VertexId source =
        graph_.GetOrAdd(ColumnVertexName(col.table_name, col.column_name),
                        odg::VertexKind::kUnderlying);
    column_vertices_[ToUpper(col.table_name)][col.column_index] = source;
    if (col.opaque || conservative) {
      // Unannotated: any change to the column fires. For conservative
      // (parameter-less) registrations this is the soundness fallback —
      // without parameter values no annotation can be instantiated.
      graph_.AddEdge(source, object);
      annotations.emplace_back();
    } else {
      // "Run time": bind the parameters into the annotation.
      odg::EdgeAnnotation annotation = col.Instantiate(params);
      annotations.emplace_back(annotation);
      graph_.AddEdge(source, object, 1.0, std::move(annotation));
    }
  }
  const std::vector<std::string>& existence_tables =
      conservative ? deps->tables : deps->tables_needing_existence_edge;
  for (const std::string& table : existence_tables) {
    const odg::VertexId source =
        graph_.GetOrAdd(TableVertexName(table), odg::VertexKind::kUnderlying);
    table_vertices_[ToUpper(table)] = source;
    graph_.AddEdge(source, object);
  }
  for (const std::string& table : deps->tables) {
    table_queries_[ToUpper(table)].insert(key);
  }

  // Row-event index registration: one gate per annotated column filter the
  // query places on each table, so insert/delete events find the affected
  // keys with one probe instead of one filter evaluation per registration.
  if (options_.use_predicate_index) {
    for (const std::string& table : deps->tables) {
      const std::string table_key = ToUpper(table);
      TableRowIndex& index = row_indexes_[table_key];
      if (conservative) {
        // No parameter values → no filters → every row event fires.
        index.AddKey(key, {});
        continue;
      }
      bool linear = false;
      std::vector<std::pair<uint32_t, ValueSet>> gates;
      for (size_t i = 0; i < deps->columns.size(); ++i) {
        const ColumnDependencyTemplate& col = deps->columns[i];
        if (ToUpper(col.table_name) != table_key) continue;
        if (col.opaque || !annotations[i]) continue;
        std::optional<ValueSet> accepts = CompileAcceptSet(annotations[i]->filter());
        if (!accepts) {
          linear = true;  // wildcard LIKE: evaluate the real filter per event
          break;
        }
        gates.emplace_back(col.column_index, std::move(*accepts));
      }
      if (linear) {
        index.AddLinearKey(key);
      } else {
        index.AddKey(key, std::move(gates));
      }
    }
  }

  Registered reg;
  reg.vertex = object;
  reg.query = std::move(query);
  reg.params = params;
  reg.deps = std::move(deps);
  reg.annotations = std::move(annotations);
  reg.conservative = conservative;
  registered_.emplace(key, std::move(reg));
  const size_t count = registered_.size();
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  stats_.registered_queries = count;
}

void DupEngine::UnregisterQuery(const std::string& key) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  auto it = registered_.find(key);
  if (it == registered_.end()) return;
  if (graph_.IsLive(it->second.vertex)) graph_.RemoveVertex(it->second.vertex);
  for (const std::string& table : it->second.deps->tables) {
    table_queries_[ToUpper(table)].erase(key);
  }
  RemoveFromRowIndexes(key, *it->second.deps);
  registered_.erase(it);
  const size_t remaining = registered_.size();
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  stats_.registered_queries = remaining;
}

bool DupEngine::RowAwareKeeps(const Registered& reg, const storage::UpdateEvent& event) const {
  // Conservative (recovered) registrations have no parameter values, so the
  // WHERE clause cannot be evaluated — never keep, always invalidate.
  if (reg.conservative) return false;
  // Refinement applies to genuinely single-slot queries only; join queries
  // (including self-joins) fall back to the value-aware verdict.
  if (reg.query->tables().size() != 1) return false;
  if (ToUpper(reg.query->table(0).name()) != ToUpper(event.table)) return false;
  const sql::Expr* where = reg.query->stmt().where.get();

  auto matches = [&](const storage::Row& row) {
    if (!where) return true;
    auto t = sql::EvalPredicateOnRow(*where, row, reg.params, 0);
    return t.has_value() && *t;
  };

  switch (event.kind) {
    case storage::UpdateEvent::Kind::kInsert:
      return !matches(event.after);  // a non-matching new row cannot matter
    case storage::UpdateEvent::Kind::kDelete:
      return !matches(event.before);
    case storage::UpdateEvent::Kind::kUpdate: {
      const bool before = matches(event.before);
      const bool after = matches(event.after);
      if (before != after) return false;  // membership flipped: must invalidate
      if (!before) return true;           // irrelevant row stayed irrelevant
      // The row matches before and after: the result changes only if a
      // changed column feeds the result (projection/aggregate/group key).
      const auto& result_columns = reg.deps->result_columns_per_slot[0];
      for (const storage::AttributeChange& change : event.changes) {
        if (std::find(result_columns.begin(), result_columns.end(), change.column) !=
            result_columns.end()) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool DupEngine::RowCanAffect(const Registered& reg, const std::string& table_key,
                             const storage::Row& row) const {
  for (size_t i = 0; i < reg.deps->columns.size(); ++i) {
    const ColumnDependencyTemplate& col = reg.deps->columns[i];
    if (ToUpper(col.table_name) != table_key) continue;
    // Unannotated edges (opaque columns, conservative registrations)
    // cannot rule the row out.
    if (col.opaque || !reg.annotations[i]) continue;
    if (col.column_index >= row.size()) continue;
    if (!reg.annotations[i]->AffectedByRowValue(row[col.column_index])) return false;
  }
  return true;
}

std::vector<std::string> DupEngine::AffectedKeysBatch(const storage::UpdateBatch& batch) {
  // The hot path only *reads* the ODG and the registrations, so it runs
  // under a shared lock: concurrent statements on different tables compute
  // their affected keys in parallel. Tracing materializes per-key reasons
  // and the obsolescence budget mutates per-registration counters — both
  // take the exclusive lock instead.
  const bool exclusive =
      options_.obsolescence_threshold > 0 || tracer_set_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> shared(mutex_, std::defer_lock);
  std::unique_lock<std::shared_mutex> unique(mutex_, std::defer_lock);
  if (exclusive) {
    unique.lock();
  } else {
    shared.lock();
  }

  // Stats accumulate locally and flush under the leaf stats mutex at the
  // end, so the shared-lock path never writes shared state.
  struct LocalStats {
    uint64_t row_aware_saves = 0;
    uint64_t tolerated_changes = 0;
    std::map<std::string, uint64_t> affected_by_source;
  } local;

  const bool value_aware = options_.policy == InvalidationPolicy::kValueAware ||
                           options_.policy == InvalidationPolicy::kRowAware;
  const std::string table_key = ToUpper(std::string(batch.table));

  // Keys slated for invalidation, deduplicated across the batch's rows: a
  // key invalidated by row 1 is not re-derived or re-refined for row 900.
  std::vector<std::string> refined;
  std::unordered_set<std::string> refined_set;
  std::unordered_map<std::string, std::string> reasons;  // filled only when tracing

  for (const storage::UpdateEvent& event : batch) {
    std::vector<std::string> keys;

    if (event.kind == storage::UpdateEvent::Kind::kUpdate) {
      // Attribute updates: edge-local checks — per changed column, an
      // annotated edge fires iff some atom's truth value flips (paper
      // Fig. 6 setter tokens). Propagate answers value updates from the
      // per-vertex predicate-interval index when one is built.
      std::unordered_set<odg::VertexId> affected;
      auto table_it = column_vertices_.find(table_key);
      if (table_it != column_vertices_.end()) {
        for (const storage::AttributeChange& change : event.changes) {
          auto col_it = table_it->second.find(change.column);
          if (col_it == table_it->second.end()) continue;  // column feeds no query
          const odg::ChangeSpec spec =
              value_aware ? odg::ChangeSpec::Update(change.old_value, change.new_value)
                          : odg::ChangeSpec::Generic();
          const auto fired = graph_.Propagate(col_it->second, spec);
          // Attribute only invalidatable results (object vertices) to the
          // source: propagation may traverse intermediate vertices, which
          // are bookkeeping, not cache churn.
          uint64_t fired_objects = 0;
          for (odg::VertexId v : fired) {
            if (graph_.KindOf(v) == odg::VertexKind::kObject) ++fired_objects;
          }
          if (fired_objects > 0) {
            local.affected_by_source[graph_.NameOf(col_it->second)] += fired_objects;
          }
          for (odg::VertexId v : fired) {
            if (affected.insert(v).second && tracer_ &&
                graph_.KindOf(v) == odg::VertexKind::kObject) {
              reasons.emplace(
                  graph_.NameOf(v),
                  "update " + graph_.NameOf(col_it->second).substr(4) + " " +
                      change.old_value.ToString() + " -> " + change.new_value.ToString() +
                      (value_aware ? " fired its edge annotation"
                                   : " (value-unaware column match)"));
            }
          }
        }
      }
      keys.reserve(affected.size());
      for (odg::VertexId v : affected) {
        if (graph_.KindOf(v) == odg::VertexKind::kObject) keys.push_back(graph_.NameOf(v));
      }
    } else {
      // Insert/delete: "resetting all of the object's attributes". The row
      // image is fully known, so the value-aware check is conjunctive: the
      // row must pass every annotated column filter the query places on
      // this table (§4.2's Platinum example — a new 'customerLevel'
      // classifier must invalidate Q1 but not the cached Q2 promotions).
      const storage::Row& row =
          event.kind == storage::UpdateEvent::Kind::kInsert ? event.after : event.before;
      const char* verb = event.kind == storage::UpdateEvent::Kind::kInsert ? "insert into"
                                                                           : "delete from";
      if (value_aware && options_.use_predicate_index) {
        // One probe of the table's row-event index classifies every
        // registered key; only wildcard-LIKE registrations evaluate their
        // real filter.
        if (auto index_it = row_indexes_.find(table_key); index_it != row_indexes_.end()) {
          std::vector<std::string> linear;
          index_it->second.Probe(row, keys, linear);
          for (std::string& key : linear) {
            auto reg_it = registered_.find(key);
            if (reg_it == registered_.end()) continue;
            if (!RowCanAffect(reg_it->second, table_key, row)) continue;
            keys.push_back(std::move(key));
          }
        }
      } else if (auto queries_it = table_queries_.find(table_key);
                 queries_it != table_queries_.end()) {
        for (const std::string& key : queries_it->second) {
          if (value_aware) {
            auto reg_it = registered_.find(key);
            if (reg_it == registered_.end()) continue;
            if (!RowCanAffect(reg_it->second, table_key, row)) continue;
          }
          keys.push_back(key);
        }
      }
      const std::string source =
          (event.kind == storage::UpdateEvent::Kind::kInsert ? "insert:" : "delete:") +
          table_key;
      for (const std::string& key : keys) {
        local.affected_by_source[source] += 1;
        if (tracer_) {
          reasons.emplace(key, std::string(verb) + " " + event.table +
                                   (value_aware ? " passed every column filter"
                                                : " (value-unaware table match)"));
        }
      }
    }

    // Refinements on top of the value-aware verdicts: Policy IV's
    // row-aware check, then the weighted-DUP obsolescence budget. Both are
    // per (key, event); keys already slated by an earlier row skip them.
    for (std::string& key : keys) {
      if (refined_set.count(key)) continue;
      auto reg_it = registered_.find(key);
      if (reg_it == registered_.end()) continue;
      if (options_.policy == InvalidationPolicy::kRowAware &&
          RowAwareKeeps(reg_it->second, event)) {
        ++local.row_aware_saves;
        continue;
      }
      if (options_.obsolescence_threshold > 0) {
        reg_it->second.obsolescence += 1.0;
        if (reg_it->second.obsolescence <= options_.obsolescence_threshold) {
          ++local.tolerated_changes;
          continue;  // "not too obsolete" — keep serving it (paper Fig. 2)
        }
      }
      refined_set.insert(key);
      refined.push_back(std::move(key));
    }
  }

  if (tracer_) {
    for (const std::string& key : refined) {
      auto it = reasons.find(key);
      tracer_(key, it == reasons.end() ? "invalidated" : it->second);
    }
  }

  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.update_events += batch.count;
    ++stats_.update_batches;
    stats_.row_aware_saves += local.row_aware_saves;
    stats_.tolerated_changes += local.tolerated_changes;
    for (const auto& [source, count] : local.affected_by_source) {
      stats_.affected_by_source[source] += count;
    }
  }
  return refined;
}

void DupEngine::SetTracer(InvalidationTracer tracer) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  tracer_set_.store(tracer != nullptr, std::memory_order_relaxed);
  tracer_ = std::move(tracer);
}

void DupEngine::OnUpdate(const storage::UpdateEvent& event) {
  OnBatch(storage::UpdateBatch{event.table, &event, 1});
}

void DupEngine::OnBatch(const storage::UpdateBatch& batch) {
  if (batch.empty()) return;
  if (options_.policy == InvalidationPolicy::kNone) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.update_events += batch.count;  // observed, deliberately ignored (TTL-only)
    ++stats_.update_batches;
    return;
  }
  // Epochs first: any execution that read pre-event data and has not yet
  // stored its result will fail its admission check, even if the
  // invalidations below run before its key is cached. One bump per
  // distinct touched column, not one per row.
  StampEpochsBatch(batch);
  if (options_.policy == InvalidationPolicy::kFlushAll) {
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      stats_.update_events += batch.count;
      ++stats_.update_batches;
      ++stats_.full_flushes;  // one flush per statement, not per row
    }
    // Clear() notifies the removal listener per key, which unregisters the
    // object vertices; no lock may be held here.
    cache_.Clear();
    return;
  }

  const std::vector<std::string> keys = AffectedKeysBatch(batch);
  Refresher refresher;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    refresher = refresher_;
  }
  uint64_t refreshed = 0;
  std::vector<std::string> to_invalidate;
  to_invalidate.reserve(keys.size());
  for (const std::string& key : keys) {
    // Fig. 7 step 10: "result discard/update cache" — try the update path
    // first when configured.
    if (refresher && refresher(key)) {
      ++refreshed;
      std::lock_guard<std::shared_mutex> lock(mutex_);
      auto it = registered_.find(key);
      if (it != registered_.end()) it->second.obsolescence = 0.0;  // freshly updated
      continue;
    }
    to_invalidate.push_back(key);
  }
  // Batched removal: keys grouped by shard, one lock acquisition per
  // touched shard (instead of one per key).
  const uint64_t invalidated = cache_.InvalidateBatch(to_invalidate);
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  stats_.invalidations += invalidated;
  stats_.refreshes += refreshed;
}

void DupEngine::SetRefresher(Refresher refresher) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  refresher_ = std::move(refresher);
}

std::optional<std::pair<std::shared_ptr<const sql::BoundQuery>, std::vector<Value>>>
DupEngine::LookupRegistration(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = registered_.find(key);
  if (it == registered_.end()) return std::nullopt;
  // A conservative registration lost its parameter values in the crash; it
  // cannot be re-executed (the refresher falls back to invalidation).
  if (it->second.conservative) return std::nullopt;
  return std::make_pair(it->second.query, it->second.params);
}

DupStats DupEngine::stats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  DupStats out;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    out = stats_;
  }
  // Fold in the index counters maintained by the probe structures
  // themselves (relaxed atomics; approximate under concurrency).
  out.predicate_index_probes = graph_.index_probes();
  out.predicate_index_fallbacks = graph_.index_fallbacks();
  for (const auto& [table, index] : row_indexes_) {
    out.predicate_index_probes += index.probes();
    out.predicate_index_fallbacks += index.linear_fallbacks();
  }
  return out;
}

std::string DupEngine::DumpGraph() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return graph_.ToDot();
}

size_t DupEngine::GraphVertexCount() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return graph_.VertexCount();
}

size_t DupEngine::GraphEdgeCount() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return graph_.EdgeCount();
}

}  // namespace qc::dup
