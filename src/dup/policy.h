// The invalidation policies compared in the paper's §5.
//
// @thread_safety Stateless: an enum and a pure name function, safe from
// any thread. Note that the chosen policy also shapes the update-epoch
// protocol (src/dup/epochs.h): kNone stamps no epochs at all, kFlushAll
// makes every in-flight execution observe the global "*" slot.
#pragma once

namespace qc::dup {

enum class InvalidationPolicy {
  /// No update-driven invalidation at all: cached results live until they
  /// expire (TTL) or are evicted. The "plain expiration-times cache" of
  /// paper §3, kept as a baseline — it trades unbounded-until-TTL
  /// staleness for never paying invalidation work.
  kNone,

  /// Policy I: any update flushes the entire cache.
  kFlushAll,

  /// Policy II: basic (value-unaware) DUP — invalidate every cached query
  /// that depends on an updated column, regardless of the values involved.
  kValueUnaware,

  /// Policy III: value-aware DUP — ODG edge annotations gate invalidation
  /// on whether the update can actually flip the query's predicate.
  kValueAware,

  /// Policy IV (our ablation extension, beyond the paper): after the
  /// value-aware gate, re-evaluate the query's WHERE clause against the
  /// full before/after row images and skip invalidations that provably
  /// cannot change the result. Only refines single-table queries.
  kRowAware,
};

const char* PolicyName(InvalidationPolicy policy);

}  // namespace qc::dup
