// Row-event index: answers "which registered queries can an inserted or
// deleted row affect?" with one probe per changed row instead of one
// filter evaluation per registered query.
//
// The engine's value-aware insert/delete check (paper §4.2's Platinum
// example) is conjunctive: the row must pass EVERY annotated column filter
// the query places on the table. This module compiles each single-column
// filter (odg::ColumnPredicate) into the set of values for which the
// filter is *definitely true* — a ValueSet of disjoint intervals over the
// Value total order plus a NULL flag — and indexes those sets per column:
//
//   * singleton intervals          → hash buckets (points_)
//   * rays (-inf, b] / (-inf, b)   → ordered scan from b >= v (below_)
//   * rays [a, +inf) / (a, +inf)   → ordered scan up to a <= v (above_)
//   * bounded intervals            → keyed by lo, verified against hi
//                                    (finite_; scan is bounded by the
//                                    intervals with lo <= v, not output-
//                                    sensitive — acceptable while bounded-
//                                    interval gates are rare)
//   * whole-line intervals         → all_ (only NULL can be rejected)
//
// A (key, column-filter) pair is one *gate*; the pieces of one gate are
// disjoint, so a probe value credits each gate at most once and a key
// fires iff its credited-gate count equals its gate count. Keys with no
// gates (no annotated filters on this table) always fire; keys with an
// uncompilable filter (wildcard LIKE) are returned separately so the
// caller can fall back to direct filter evaluation.
//
// Compilation is exact in Kleene logic: T("definitely true") and
// F("definitely false") sets are tracked per predicate node (And: T=∩,
// F=∪; Or: T=∪, F=∩; Not: swap), mirroring ColumnPredicate::Eval.
//
// @thread_safety Externally synchronized by the DUP engine lock: Probe may
// run under a shared lock from many threads concurrently (it only touches
// const state and relaxed atomic counters); Add*/RemoveKey require the
// exclusive lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "odg/annotation.h"

namespace qc::dup {

/// A set of non-NULL values represented as sorted disjoint intervals over
/// the Value total order, plus an explicit NULL-membership flag.
class ValueSet {
 public:
  /// One interval. An unset bound value means infinite on that side (and
  /// `closed` is meaningless). Empty intervals are never stored.
  struct Interval {
    std::optional<Value> lo;
    bool lo_closed = false;
    std::optional<Value> hi;
    bool hi_closed = false;
  };

  static ValueSet Empty() { return ValueSet(); }
  static ValueSet All(bool with_null);
  static ValueSet Point(Value v);
  /// (-inf, b] when closed, (-inf, b) otherwise.
  static ValueSet Below(Value b, bool closed);
  /// [a, +inf) when closed, (a, +inf) otherwise.
  static ValueSet Above(Value a, bool closed);
  /// [a, b] (both closed). Empty when b < a.
  static ValueSet Range(Value a, Value b);

  static ValueSet Union(const ValueSet& a, const ValueSet& b);
  static ValueSet Intersect(const ValueSet& a, const ValueSet& b);
  /// Complement relative to (all values ∪ {NULL}).
  static ValueSet Complement(const ValueSet& s);

  bool Contains(const Value& v) const;
  bool contains_null() const { return null_in_; }
  bool empty() const { return intervals_.empty() && !null_in_; }
  bool IsUniverse() const;  // every value including NULL
  const std::vector<Interval>& intervals() const { return intervals_; }

  std::string ToString() const;

 private:
  std::vector<Interval> intervals_;  // sorted, disjoint, non-touching
  bool null_in_ = false;
};

/// The set of values where `p` evaluates to definitely-true, or nullopt if
/// the predicate contains an atom the interval algebra cannot express
/// exactly (a wildcard LIKE).
std::optional<ValueSet> CompileAcceptSet(const odg::ColumnPredicate& p);

/// Per-table index over registered query keys. See file comment.
class TableRowIndex {
 public:
  /// Register `key` with one gate per (column, accept-set). An empty gate
  /// list means the key fires on every row event of this table.
  void AddKey(const std::string& key, std::vector<std::pair<uint32_t, ValueSet>> gates);

  /// Register `key` as linear: Probe reports it for direct evaluation.
  void AddLinearKey(const std::string& key);

  /// Remove a key registered through either entry point. Idempotent.
  void RemoveKey(const std::string& key);

  bool empty() const { return by_name_.empty(); }
  size_t key_count() const { return by_name_.size(); }

  /// Classify every registered key against a row image: keys whose gates
  /// all accept are appended to `fired`; linear keys are appended to
  /// `linear` (caller decides by evaluating the real filter). A column
  /// index beyond the row's arity cannot reject (mirrors the engine's
  /// direct check).
  void Probe(const std::vector<Value>& row, std::vector<std::string>& fired,
             std::vector<std::string>& linear) const;

  uint64_t probes() const { return probes_.load(std::memory_order_relaxed); }
  uint64_t linear_fallbacks() const { return linear_fallbacks_.load(std::memory_order_relaxed); }

 private:
  using KeyId = uint32_t;

  struct RayEntry {
    KeyId key;
    bool closed;
  };
  struct FiniteEntry {
    KeyId key;
    bool lo_closed;
    Value hi;
    bool hi_closed;
  };

  /// Where one posted piece lives, so RemoveKey can take it back out.
  struct Posting {
    enum class Kind { kPoint, kBelow, kAbove, kFinite, kAll, kNull, kGated };
    Kind kind;
    uint32_t column;
    Value point;  // kPoint bucket key
    std::multimap<Value, RayEntry>::iterator ray_it;
    std::multimap<Value, FiniteEntry>::iterator finite_it;
  };

  struct ColumnIndex {
    std::unordered_map<Value, std::vector<KeyId>, ValueHash> points;
    std::multimap<Value, RayEntry> below;   // keyed by the ray's bound b
    std::multimap<Value, RayEntry> above;   // keyed by the ray's bound a
    std::multimap<Value, FiniteEntry> finite;  // keyed by lo
    std::vector<KeyId> all;      // gates accepting every non-NULL value
    std::vector<KeyId> null_ok;  // gates accepting NULL
    std::vector<KeyId> gated;    // every gate on this column (short-row credit)
  };

  struct KeyInfo {
    std::string name;
    bool live = false;
    bool linear = false;
    uint32_t gate_count = 0;
    std::vector<Posting> postings;
  };

  void PostGate(KeyId id, uint32_t column, const ValueSet& set);

  std::unordered_map<std::string, KeyId> by_name_;
  std::vector<KeyInfo> keys_;
  std::vector<KeyId> free_ids_;
  std::unordered_map<uint32_t, ColumnIndex> columns_;
  std::vector<KeyId> zero_gate_;  // live keys with gate_count == 0
  std::vector<KeyId> linear_;     // live linear keys

  mutable std::atomic<uint64_t> probes_{0};
  mutable std::atomic<uint64_t> linear_fallbacks_{0};
};

}  // namespace qc::dup
