#include "dup/extractor.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/error.h"

namespace qc::dup {

namespace {

using sql::Expr;

// ---------------------------------------------------------------------------
// Template instantiation
// ---------------------------------------------------------------------------

}  // namespace

Value OperandTemplate::Resolve(const std::vector<Value>& params) const {
  if (!is_param) return constant;
  if (param_index >= params.size()) {
    throw BindError("dependency template: unbound parameter $" + std::to_string(param_index + 1));
  }
  return params[param_index];
}

odg::Atom AtomTemplate::Instantiate(const std::vector<Value>& params) const {
  odg::Atom atom;
  atom.kind = kind;
  atom.cmp_op = cmp_op;
  atom.a = a.Resolve(params);
  atom.b = b.Resolve(params);
  atom.set.reserve(set.size());
  for (const OperandTemplate& member : set) atom.set.push_back(member.Resolve(params));
  atom.negated = negated;
  return atom;
}

odg::ColumnPredicate FilterTemplate::Instantiate(const std::vector<Value>& params) const {
  switch (kind) {
    case Kind::kTrue:
      return odg::ColumnPredicate::True();
    case Kind::kAtom:
      return odg::ColumnPredicate::MakeAtom(atom.Instantiate(params));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<odg::ColumnPredicate> parts;
      parts.reserve(children.size());
      for (const FilterTemplate& child : children) parts.push_back(child.Instantiate(params));
      return kind == Kind::kAnd ? odg::ColumnPredicate::And(std::move(parts))
                                : odg::ColumnPredicate::Or(std::move(parts));
    }
  }
  return odg::ColumnPredicate::True();
}

odg::EdgeAnnotation ColumnDependencyTemplate::Instantiate(const std::vector<Value>& params) const {
  std::vector<odg::Atom> atoms_out;
  atoms_out.reserve(atoms.size());
  for (const AtomTemplate& atom : atoms) atoms_out.push_back(atom.Instantiate(params));
  return odg::EdgeAnnotation(std::move(atoms_out), filter.Instantiate(params));
}

namespace {

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

/// Negation-normal-form view of the WHERE clause: AND/OR internal nodes,
/// atoms at the leaves with an explicit polarity.
struct NnfNode {
  enum class Kind { kAnd, kOr, kAtom };
  Kind kind = Kind::kAtom;
  const Expr* atom = nullptr;
  bool negated = false;
  std::vector<NnfNode> children;
};

NnfNode ToNnf(const Expr& e, bool negate) {
  switch (e.kind) {
    case Expr::Kind::kUnaryNot:
      return ToNnf(*e.children[0], !negate);
    case Expr::Kind::kBinary:
      if (e.op == sql::BinaryOp::kAnd || e.op == sql::BinaryOp::kOr) {
        NnfNode node;
        const bool is_and = (e.op == sql::BinaryOp::kAnd) != negate;  // De Morgan
        node.kind = is_and ? NnfNode::Kind::kAnd : NnfNode::Kind::kOr;
        node.children.push_back(ToNnf(*e.children[0], negate));
        node.children.push_back(ToNnf(*e.children[1], negate));
        return node;
      }
      [[fallthrough]];
    default: {
      NnfNode node;
      node.kind = NnfNode::Kind::kAtom;
      node.atom = &e;
      // BETWEEN/IN/LIKE carry their own negation; fold it into the polarity.
      node.negated = negate != e.negated;
      return node;
    }
  }
}

using ColumnKey = std::pair<int32_t, uint32_t>;  // (slot, column index)

struct ColumnState {
  bool referenced = false;
  bool opaque = false;
  std::vector<AtomTemplate> atoms;
};

void CollectColumns(const Expr& e, std::vector<ColumnKey>& out) {
  if (e.kind == Expr::Kind::kColumn) {
    out.emplace_back(e.table_slot, static_cast<uint32_t>(e.column_index));
    return;
  }
  for (const sql::ExprPtr& c : e.children) CollectColumns(*c, out);
}

std::optional<OperandTemplate> AsOperand(const Expr& e) {
  OperandTemplate op;
  if (e.kind == Expr::Kind::kLiteral) {
    op.constant = e.value;
    return op;
  }
  if (e.kind == Expr::Kind::kParam) {
    op.is_param = true;
    op.param_index = e.param_index;
    return op;
  }
  return std::nullopt;
}

/// Analysis of one NNF atom: either it is a separable single-column
/// predicate (column + atom template), or it taints every column it
/// references as opaque.
struct AtomAnalysis {
  bool separable = false;
  ColumnKey column{};
  AtomTemplate tmpl;
  std::vector<ColumnKey> referenced;
};

AtomAnalysis AnalyzeAtom(const Expr& e, bool negated) {
  AtomAnalysis out;
  CollectColumns(e, out.referenced);
  if (out.referenced.empty()) return out;  // constant predicate: no deps

  auto single_column = [&](const Expr& subject) -> bool {
    return subject.kind == Expr::Kind::kColumn;
  };

  switch (e.kind) {
    case Expr::Kind::kBinary: {
      if (!sql::IsComparison(e.op)) return out;
      const Expr& l = *e.children[0];
      const Expr& r = *e.children[1];
      const Expr* col = nullptr;
      std::optional<OperandTemplate> operand;
      sql::BinaryOp op = e.op;
      if (single_column(l) && (operand = AsOperand(r))) {
        col = &l;
      } else if (single_column(r) && (operand = AsOperand(l))) {
        col = &r;
        switch (op) {  // normalize to column-on-the-left
          case sql::BinaryOp::kLt: op = sql::BinaryOp::kGt; break;
          case sql::BinaryOp::kLe: op = sql::BinaryOp::kGe; break;
          case sql::BinaryOp::kGt: op = sql::BinaryOp::kLt; break;
          case sql::BinaryOp::kGe: op = sql::BinaryOp::kLe; break;
          default: break;
        }
      } else {
        return out;  // column-vs-column (join, A.x > A.y): opaque
      }
      out.separable = true;
      out.column = {col->table_slot, static_cast<uint32_t>(col->column_index)};
      out.tmpl.kind = odg::Atom::Kind::kCmp;
      out.tmpl.cmp_op = op;
      out.tmpl.a = *operand;
      out.tmpl.negated = negated;
      return out;
    }
    case Expr::Kind::kBetween: {
      const Expr& subject = *e.children[0];
      auto lo = AsOperand(*e.children[1]);
      auto hi = AsOperand(*e.children[2]);
      if (!single_column(subject) || !lo || !hi) return out;
      out.separable = true;
      out.column = {subject.table_slot, static_cast<uint32_t>(subject.column_index)};
      out.tmpl.kind = odg::Atom::Kind::kBetween;
      out.tmpl.a = *lo;
      out.tmpl.b = *hi;
      out.tmpl.negated = negated;
      return out;
    }
    case Expr::Kind::kIn: {
      const Expr& subject = *e.children[0];
      if (!single_column(subject)) return out;
      AtomTemplate tmpl;
      tmpl.kind = odg::Atom::Kind::kIn;
      for (size_t i = 1; i < e.children.size(); ++i) {
        auto member = AsOperand(*e.children[i]);
        if (!member) return out;
        tmpl.set.push_back(*member);
      }
      out.separable = true;
      out.column = {subject.table_slot, static_cast<uint32_t>(subject.column_index)};
      tmpl.negated = negated;
      out.tmpl = std::move(tmpl);
      return out;
    }
    case Expr::Kind::kLike: {
      const Expr& subject = *e.children[0];
      auto pattern = AsOperand(*e.children[1]);
      if (!single_column(subject) || !pattern) return out;
      out.separable = true;
      out.column = {subject.table_slot, static_cast<uint32_t>(subject.column_index)};
      out.tmpl.kind = odg::Atom::Kind::kLike;
      out.tmpl.a = *pattern;
      out.tmpl.negated = negated;
      return out;
    }
    case Expr::Kind::kIsNull: {
      const Expr& subject = *e.children[0];
      if (!single_column(subject)) return out;
      out.separable = true;
      out.column = {subject.table_slot, static_cast<uint32_t>(subject.column_index)};
      out.tmpl.kind = odg::Atom::Kind::kIsNull;
      out.tmpl.negated = negated;
      return out;
    }
    default:
      return out;
  }
}

class Extractor {
 public:
  Extractor(const sql::BoundQuery& query, const ExtractionOptions& options)
      : query_(query), options_(options) {}

  std::shared_ptr<const DependencyTemplate> Run() {
    auto out = std::make_shared<DependencyTemplate>();
    out->result_columns_per_slot.resize(query_.tables().size());

    CollectResultColumns(*out);
    if (query_.stmt().where) {
      nnf_ = ToNnf(*query_.stmt().where, false);
      AnalyzeWhere(nnf_);
    }

    // Assemble per-column templates, with filters from the NNF tree.
    for (auto& [key, state] : columns_) {
      ColumnDependencyTemplate col;
      col.table_slot = key.first;
      col.column_index = key.second;
      const storage::Table& table = query_.table(key.first);
      col.table_name = table.name();
      col.column_name = table.schema().column(key.second).name;
      col.opaque = state.opaque;
      if (!col.opaque) {
        col.atoms = state.atoms;
        col.filter = query_.stmt().where ? BuildFilter(nnf_, key) : FilterTemplate::True();
      }
      out->columns.push_back(std::move(col));
    }

    // Distinct tables + existence edges for tables with no column deps.
    for (size_t slot = 0; slot < query_.tables().size(); ++slot) {
      const std::string& name = query_.table(slot).name();
      if (std::find(out->tables.begin(), out->tables.end(), name) == out->tables.end()) {
        out->tables.push_back(name);
      }
    }
    for (const std::string& table : out->tables) {
      bool has_column_dep = false;
      for (const ColumnDependencyTemplate& col : out->columns) {
        if (col.table_name == table) {
          has_column_dep = true;
          break;
        }
      }
      if (!has_column_dep) out->tables_needing_existence_edge.push_back(table);
    }
    return out;
  }

 private:
  ColumnState& StateFor(ColumnKey key) {
    ColumnState& state = columns_[key];
    state.referenced = true;
    return state;
  }

  void MarkOpaque(ColumnKey key) { StateFor(key).opaque = true; }

  void CollectResultColumns(DependencyTemplate& out) {
    auto add_result_column = [&](int32_t slot, uint32_t col) {
      auto& list = out.result_columns_per_slot[slot];
      if (std::find(list.begin(), list.end(), col) == list.end()) list.push_back(col);
    };

    for (const sql::SelectItem& item : query_.stmt().items) {
      switch (item.kind) {
        case sql::SelectItem::Kind::kStar:
          // result_columns always reflect the true result structure (the
          // row-aware policy refines with them); only the ODG edges honor
          // include_projection.
          for (size_t slot = 0; slot < query_.tables().size(); ++slot) {
            const storage::Table& table = query_.table(slot);
            for (uint32_t c = 0; c < table.schema().size(); ++c) {
              if (options_.include_projection) MarkOpaque({static_cast<int32_t>(slot), c});
              add_result_column(static_cast<int32_t>(slot), c);
            }
          }
          break;
        case sql::SelectItem::Kind::kColumn: {
          ColumnKey key{item.expr->table_slot, static_cast<uint32_t>(item.expr->column_index)};
          if (options_.include_projection) MarkOpaque(key);
          add_result_column(key.first, key.second);
          break;
        }
        case sql::SelectItem::Kind::kScalar: {
          // Arithmetic projection: every column it reads is a dependency.
          auto walk = [&](const sql::Expr& e, auto&& self) -> void {
            if (e.kind == Expr::Kind::kColumn) {
              ColumnKey key{e.table_slot, static_cast<uint32_t>(e.column_index)};
              if (options_.include_projection) MarkOpaque(key);
              add_result_column(key.first, key.second);
              return;
            }
            for (const sql::ExprPtr& c : e.children) self(*c, self);
          };
          walk(*item.expr, walk);
          break;
        }
        case sql::SelectItem::Kind::kAggregate:
          // COUNT(*) has no argument; the row set is covered by WHERE deps
          // and the table-existence edge.
          if (item.expr) {
            ColumnKey key{item.expr->table_slot, static_cast<uint32_t>(item.expr->column_index)};
            if (options_.include_aggregate_args) MarkOpaque(key);
            add_result_column(key.first, key.second);
          }
          break;
      }
    }
    for (const sql::ExprPtr& g : query_.stmt().group_by) {
      ColumnKey key{g->table_slot, static_cast<uint32_t>(g->column_index)};
      MarkOpaque(key);
      add_result_column(key.first, key.second);
    }
    // ORDER BY keys determine row order — and with LIMIT, membership — so
    // like GROUP BY keys they are dependencies in every extraction mode.
    for (const sql::OrderKey& key : query_.stmt().order_by) {
      ColumnKey column{key.column->table_slot, static_cast<uint32_t>(key.column->column_index)};
      MarkOpaque(column);
      add_result_column(column.first, column.second);
    }
  }

  void AnalyzeWhere(const NnfNode& node) {
    if (node.kind != NnfNode::Kind::kAtom) {
      for (const NnfNode& child : node.children) AnalyzeWhere(child);
      return;
    }
    AtomAnalysis analysis = AnalyzeAtom(*node.atom, node.negated);
    if (analysis.separable) {
      StateFor(analysis.column).atoms.push_back(analysis.tmpl);
    } else {
      for (ColumnKey key : analysis.referenced) MarkOpaque(key);
    }
  }

  /// Relax the NNF tree onto one column: atoms on other columns (or
  /// non-separable atoms) become TRUE, leaving a sound single-column
  /// approximation of "this row could satisfy the WHERE clause".
  FilterTemplate BuildFilter(const NnfNode& node, ColumnKey key) {
    if (node.kind == NnfNode::Kind::kAtom) {
      AtomAnalysis analysis = AnalyzeAtom(*node.atom, node.negated);
      if (analysis.separable && analysis.column == key) {
        FilterTemplate f;
        f.kind = FilterTemplate::Kind::kAtom;
        f.atom = analysis.tmpl;
        return f;
      }
      return FilterTemplate::True();
    }
    FilterTemplate f;
    f.kind = node.kind == NnfNode::Kind::kAnd ? FilterTemplate::Kind::kAnd
                                              : FilterTemplate::Kind::kOr;
    for (const NnfNode& child : node.children) f.children.push_back(BuildFilter(child, key));
    return f;
  }

  const sql::BoundQuery& query_;
  ExtractionOptions options_;
  NnfNode nnf_;
  std::map<ColumnKey, ColumnState> columns_;
};

}  // namespace

std::shared_ptr<const DependencyTemplate> ExtractDependencies(const sql::BoundQuery& query,
                                                              const ExtractionOptions& options) {
  return Extractor(query, options).Run();
}

}  // namespace qc::dup
