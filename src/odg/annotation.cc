#include "odg/annotation.h"

#include <sstream>

#include "common/strings.h"

namespace qc::odg {

namespace {

std::optional<bool> ApplyPolarity(std::optional<bool> truth, bool negated) {
  if (!truth) return std::nullopt;
  return negated ? !*truth : *truth;
}

/// Polarity-free truth of an atom on a value; nullopt = unknown.
std::optional<bool> RawEval(const Atom& atom, const Value& v) {
  switch (atom.kind) {
    case Atom::Kind::kIsNull:
      return v.is_null();
    case Atom::Kind::kCmp: {
      if (v.is_null() || atom.a.is_null()) return std::nullopt;
      const auto cmp = v.compare(atom.a);
      switch (atom.cmp_op) {
        case sql::BinaryOp::kEq: return cmp == std::strong_ordering::equal;
        case sql::BinaryOp::kNe: return cmp != std::strong_ordering::equal;
        case sql::BinaryOp::kLt: return cmp == std::strong_ordering::less;
        case sql::BinaryOp::kLe: return cmp != std::strong_ordering::greater;
        case sql::BinaryOp::kGt: return cmp == std::strong_ordering::greater;
        case sql::BinaryOp::kGe: return cmp != std::strong_ordering::less;
        default: return std::nullopt;
      }
    }
    case Atom::Kind::kBetween:
      if (v.is_null() || atom.a.is_null() || atom.b.is_null()) return std::nullopt;
      return v >= atom.a && v <= atom.b;
    case Atom::Kind::kIn: {
      if (v.is_null()) return std::nullopt;
      bool saw_null = false;
      for (const Value& item : atom.set) {
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (v == item) return true;
      }
      return saw_null ? std::nullopt : std::optional<bool>(false);
    }
    case Atom::Kind::kLike:
      if (v.is_null() || atom.a.is_null()) return std::nullopt;
      if (!v.is_string() || !atom.a.is_string()) return false;
      return LikeMatch(v.as_string(), atom.a.as_string());
  }
  return std::nullopt;
}

}  // namespace

std::optional<bool> Atom::Eval(const Value& v) const {
  return ApplyPolarity(RawEval(*this, v), negated);
}

bool Atom::Flips(const Value& old_v, const Value& new_v) const {
  // Three truth states: true / false / unknown. The edge must fire exactly
  // when the state differs — an unknown→true transition can move a row into
  // the result just like false→true can.
  const std::optional<bool> before = RawEval(*this, old_v);
  const std::optional<bool> after = RawEval(*this, new_v);
  return before != after;
}

std::string Atom::ToString(const std::string& column) const {
  std::ostringstream os;
  if (negated) os << "NOT ";
  switch (kind) {
    case Kind::kCmp:
      os << column << " " << sql::BinaryOpName(cmp_op) << " " << a.ToString();
      break;
    case Kind::kBetween:
      os << column << " BETWEEN " << a.ToString() << " AND " << b.ToString();
      break;
    case Kind::kIn: {
      os << column << " IN (";
      for (size_t i = 0; i < set.size(); ++i) {
        if (i) os << ", ";
        os << set[i].ToString();
      }
      os << ")";
      break;
    }
    case Kind::kLike:
      os << column << " LIKE " << a.ToString();
      break;
    case Kind::kIsNull:
      os << column << " IS NULL";
      break;
  }
  return os.str();
}

ColumnPredicate ColumnPredicate::True() { return ColumnPredicate{}; }

ColumnPredicate ColumnPredicate::MakeAtom(Atom a) {
  ColumnPredicate p;
  p.kind = Kind::kAtom;
  p.atom = std::move(a);
  return p;
}

ColumnPredicate ColumnPredicate::And(std::vector<ColumnPredicate> cs) {
  // TRUE conjuncts are identity; a single child collapses.
  std::vector<ColumnPredicate> kept;
  for (auto& c : cs) {
    if (!c.IsTriviallyTrue()) kept.push_back(std::move(c));
  }
  if (kept.empty()) return True();
  if (kept.size() == 1) return std::move(kept[0]);
  ColumnPredicate p;
  p.kind = Kind::kAnd;
  p.children = std::move(kept);
  return p;
}

ColumnPredicate ColumnPredicate::Or(std::vector<ColumnPredicate> cs) {
  // A TRUE disjunct absorbs the whole disjunction.
  for (auto& c : cs) {
    if (c.IsTriviallyTrue()) return True();
  }
  if (cs.empty()) return True();
  if (cs.size() == 1) return std::move(cs[0]);
  ColumnPredicate p;
  p.kind = Kind::kOr;
  p.children = std::move(cs);
  return p;
}

std::optional<bool> ColumnPredicate::Eval(const Value& v) const {
  switch (kind) {
    case Kind::kTrue:
      return true;
    case Kind::kAtom:
      return atom.Eval(v);
    case Kind::kNot: {
      auto inner = children[0].Eval(v);
      if (!inner) return std::nullopt;
      return !*inner;
    }
    case Kind::kAnd: {
      bool unknown = false;
      for (const ColumnPredicate& c : children) {
        auto t = c.Eval(v);
        if (t && !*t) return false;
        if (!t) unknown = true;
      }
      if (unknown) return std::nullopt;
      return true;
    }
    case Kind::kOr: {
      bool unknown = false;
      for (const ColumnPredicate& c : children) {
        auto t = c.Eval(v);
        if (t && *t) return true;
        if (!t) unknown = true;
      }
      if (unknown) return std::nullopt;
      return false;
    }
  }
  return std::nullopt;
}

std::string ColumnPredicate::ToString(const std::string& column) const {
  switch (kind) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kAtom:
      return atom.ToString(column);
    case Kind::kNot:
      return "NOT (" + children[0].ToString(column) + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += sep;
        out += children[i].ToString(column);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

bool EdgeAnnotation::AffectedByUpdate(const Value& old_v, const Value& new_v) const {
  for (const Atom& atom : atoms_) {
    if (atom.Flips(old_v, new_v)) return true;
  }
  return false;
}

bool EdgeAnnotation::AffectedByRowValue(const Value& v) const {
  // A row can contribute to the result only if the filter does not
  // definitely exclude it; unknown (NULL) means the WHERE clause cannot be
  // definitely true either, so the row is excluded and the edge stays quiet.
  auto t = filter_.Eval(v);
  return t.has_value() && *t;
}

std::string EdgeAnnotation::ToString(const std::string& column) const {
  std::ostringstream os;
  os << "atoms{";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i) os << "; ";
    os << atoms_[i].ToString(column);
  }
  os << "} filter{" << filter_.ToString(column) << "}";
  return os.str();
}

}  // namespace qc::odg
