// Value-aware edge annotations for the object dependence graph.
//
// The paper's key enhancement (§4.1): an ODG edge from attribute vertex
// `A.x` to query-result vertex `Q` can carry the predicate Q applies to
// A.x (the "2,9" annotation in Fig. 4). An attribute update old→new then
// only propagates along the edge if the predicate's view of the value
// changed.
//
// We represent an annotation as
//   * a set of *atoms* — the atomic predicates on the column that appear
//     anywhere in the query (c > 2, c < 9, c = 3, c BETWEEN a AND b, ...).
//     An update can affect the query result only if some atom's truth
//     value differs between the old and the new value; this is sound for
//     arbitrary AND/OR/NOT structure.
//   * a *satisfying filter* — a boolean combination of those atoms
//     describing which values of the column are compatible with the row
//     matching the query (in negation normal form, atoms on other columns
//     relaxed to TRUE). Used for insert/delete events, which the paper
//     treats as "resetting all of the object's attributes": a created or
//     deleted row fires the edge only if its column value passes the
//     filter.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "sql/ast.h"

namespace qc::odg {

/// One atomic predicate over a single column. `negated` records the
/// polarity the atom has in the (NNF) query; the flip check ignores it,
/// the filter evaluation applies it.
struct Atom {
  enum class Kind { kCmp, kBetween, kIn, kLike, kIsNull };

  Kind kind = Kind::kCmp;
  sql::BinaryOp cmp_op = sql::BinaryOp::kEq;  // kCmp
  Value a;                                    // kCmp rhs / kBetween lo / kLike pattern
  Value b;                                    // kBetween hi
  std::vector<Value> set;                     // kIn members
  bool negated = false;

  /// Tri-state truth of the atom (with polarity) on `v`; nullopt = SQL
  /// unknown (NULL operand).
  std::optional<bool> Eval(const Value& v) const;

  /// Does the atom's (polarity-free) truth value differ between old_v and
  /// new_v? Unknown counts as its own truth state: NULL→5 flips c>2 only
  /// if 5 satisfies it, NULL→NULL never flips.
  bool Flips(const Value& old_v, const Value& new_v) const;

  std::string ToString(const std::string& column = "x") const;
};

/// Single-column boolean predicate built over atoms (the satisfying
/// filter). kTrue leaves arise from relaxing atoms on other columns.
struct ColumnPredicate {
  enum class Kind { kTrue, kAtom, kAnd, kOr, kNot };

  Kind kind = Kind::kTrue;
  Atom atom;  // kAtom (polarity inside the atom)
  std::vector<ColumnPredicate> children;

  static ColumnPredicate True();
  static ColumnPredicate MakeAtom(Atom a);
  static ColumnPredicate And(std::vector<ColumnPredicate> cs);
  static ColumnPredicate Or(std::vector<ColumnPredicate> cs);

  /// Tri-state evaluation on a column value.
  std::optional<bool> Eval(const Value& v) const;

  bool IsTriviallyTrue() const { return kind == Kind::kTrue; }

  std::string ToString(const std::string& column = "x") const;
};

/// The annotation attached to an ODG edge attribute-vertex → object-vertex.
class EdgeAnnotation {
 public:
  EdgeAnnotation() = default;
  EdgeAnnotation(std::vector<Atom> atoms, ColumnPredicate filter)
      : atoms_(std::move(atoms)), filter_(std::move(filter)) {}

  /// Value-aware update check: does old→new possibly affect the target?
  bool AffectedByUpdate(const Value& old_v, const Value& new_v) const;

  /// Value-aware insert/delete check: can a row whose column holds `v`
  /// belong to the target query's result?
  bool AffectedByRowValue(const Value& v) const;

  const std::vector<Atom>& atoms() const { return atoms_; }
  const ColumnPredicate& filter() const { return filter_; }

  std::string ToString(const std::string& column = "x") const;

 private:
  std::vector<Atom> atoms_;
  ColumnPredicate filter_;
};

}  // namespace qc::odg
