#include "odg/graph.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace qc::odg {

VertexId Graph::AddVertex(const std::string& name, VertexKind kind) {
  if (by_name_.count(name)) throw Error("ODG vertex already exists: " + name);
  VertexId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    vertices_[id] = Vertex{};
  } else {
    id = static_cast<VertexId>(vertices_.size());
    vertices_.emplace_back();
  }
  Vertex& v = vertices_[id];
  v.name = name;
  v.kind = kind;
  v.live = true;
  by_name_.emplace(name, id);
  ++live_count_;
  return id;
}

VertexId Graph::GetOrAdd(const std::string& name, VertexKind kind) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  return AddVertex(name, kind);
}

std::optional<VertexId> Graph::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

const std::string& Graph::NameOf(VertexId v) const { return At(v).name; }
VertexKind Graph::KindOf(VertexId v) const { return At(v).kind; }

bool Graph::IsLive(VertexId v) const {
  return v < vertices_.size() && vertices_[v].live;
}

void Graph::IndexEdge(Vertex& src, const Edge& edge) {
  if (!predicate_index_enabled_) return;
  if (!src.index) src.index = std::make_unique<PredicateIndex>();
  src.index->AddEdge(edge.to, edge.annotation ? &*edge.annotation : nullptr);
}

void Graph::AddEdge(VertexId from, VertexId to, double weight,
                    std::optional<EdgeAnnotation> annotation) {
  Vertex& src = At(from);
  At(to).in.push_back(from);
  Edge edge;
  edge.from = from;
  edge.to = to;
  edge.weight = weight;
  edge.annotation = std::move(annotation);
  IndexEdge(src, edge);
  src.out.push_back(std::move(edge));
  ++edge_count_;
}

void Graph::SetPredicateIndexEnabled(bool enabled) {
  if (enabled == predicate_index_enabled_) return;
  predicate_index_enabled_ = enabled;
  // Rebuild (or drop) every vertex's index from its current out-edges.
  for (Vertex& v : vertices_) {
    if (!v.live) continue;
    v.index.reset();
    if (!enabled) continue;
    for (const Edge& edge : v.out) IndexEdge(v, edge);
  }
}

void Graph::RemoveVertex(VertexId v) {
  Vertex& victim = At(v);
  // Unlink incoming edges from each source's out list.
  for (VertexId src_id : victim.in) {
    if (!IsLive(src_id)) continue;
    if (vertices_[src_id].index) vertices_[src_id].index->RemoveTarget(v);
    auto& out = vertices_[src_id].out;
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](const Edge& e) {
                               if (e.to != v) return false;
                               --edge_count_;
                               return true;
                             }),
              out.end());
  }
  // Unlink outgoing edges from each target's in list.
  for (const Edge& e : victim.out) {
    if (!IsLive(e.to)) continue;
    auto& in = vertices_[e.to].in;
    in.erase(std::remove(in.begin(), in.end(), v), in.end());
    --edge_count_;
  }
  by_name_.erase(victim.name);
  victim = Vertex{};
  free_ids_.push_back(v);
  --live_count_;
}

void Graph::RemoveInEdges(VertexId v) {
  Vertex& target = At(v);
  for (VertexId src_id : target.in) {
    if (!IsLive(src_id)) continue;
    if (vertices_[src_id].index) vertices_[src_id].index->RemoveTarget(v);
    auto& out = vertices_[src_id].out;
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](const Edge& e) {
                               if (e.to != v) return false;
                               --edge_count_;
                               return true;
                             }),
              out.end());
  }
  target.in.clear();
}

size_t Graph::OutDegree(VertexId v) const { return At(v).out.size(); }
const std::vector<Graph::Edge>& Graph::OutEdges(VertexId v) const { return At(v).out; }

bool Graph::EdgeFires(const Edge& edge, const ChangeSpec& spec) const {
  if (!edge.annotation) return true;
  switch (spec.kind) {
    case ChangeSpec::Kind::kGeneric:
      return true;
    case ChangeSpec::Kind::kValueUpdate:
      return edge.annotation->AffectedByUpdate(spec.old_value, spec.new_value);
    case ChangeSpec::Kind::kRowValue:
      return edge.annotation->AffectedByRowValue(spec.new_value);
  }
  return true;
}

std::vector<VertexId> Graph::Propagate(VertexId source, const ChangeSpec& spec) const {
  const Vertex& src = At(source);
  std::vector<VertexId> affected;
  std::vector<uint8_t> seen(vertices_.size(), 0);
  seen[source] = 1;
  std::vector<VertexId> frontier;

  // First hop applies the annotation gate; deeper hops are generic. Value
  // updates with non-null sides are answered from the predicate-interval
  // index in output-sensitive time; everything else scans the out-edges.
  bool indexed = false;
  if (spec.kind == ChangeSpec::Kind::kValueUpdate && src.index) {
    if (spec.old_value.is_null() || spec.new_value.is_null()) {
      index_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    } else {
      std::vector<VertexId> fired;
      src.index->ProbeUpdate(spec.old_value, spec.new_value, fired);
      index_probes_.fetch_add(1, std::memory_order_relaxed);
      for (VertexId to : fired) {
        if (seen[to]) continue;
        seen[to] = 1;
        affected.push_back(to);
        frontier.push_back(to);
      }
      indexed = true;
    }
  }
  if (!indexed) {
    for (const Edge& edge : src.out) {
      if (!EdgeFires(edge, spec)) continue;
      if (seen[edge.to]) continue;
      seen[edge.to] = 1;
      affected.push_back(edge.to);
      frontier.push_back(edge.to);
    }
  }
  while (!frontier.empty()) {
    VertexId v = frontier.back();
    frontier.pop_back();
    for (const Edge& edge : At(v).out) {
      if (seen[edge.to]) continue;
      seen[edge.to] = 1;
      affected.push_back(edge.to);
      frontier.push_back(edge.to);
    }
  }
  return affected;
}

std::vector<VertexId> Graph::PropagateWeighted(VertexId source, const ChangeSpec& spec) {
  // Maximum-weight path accumulation: best[v] = max over firing paths of
  // the minimum edge weight on the path (the weakest dependency link
  // bounds how strongly the change matters to v). Simple ODGs have depth 1
  // where this is just the edge weight.
  std::vector<VertexId> affected;
  std::unordered_map<VertexId, double> best;
  struct Item {
    VertexId v;
    double strength;
  };
  std::vector<Item> stack;
  for (const Edge& edge : At(source).out) {
    if (!EdgeFires(edge, spec)) continue;
    stack.push_back({edge.to, edge.weight});
  }
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    auto it = best.find(item.v);
    if (it != best.end() && it->second >= item.strength) continue;
    if (it == best.end()) affected.push_back(item.v);
    best[item.v] = item.strength;
    for (const Edge& edge : At(item.v).out) {
      stack.push_back({edge.to, std::min(item.strength, edge.weight)});
    }
  }
  for (const auto& [v, strength] : best) vertices_[v].obsolescence += strength;
  return affected;
}

double Graph::ObsolescenceOf(VertexId v) const { return At(v).obsolescence; }
void Graph::ResetObsolescence(VertexId v) { At(v).obsolescence = 0.0; }

std::string Graph::ToDot() const {
  std::ostringstream os;
  os << "digraph odg {\n";
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (!vertices_[v].live) continue;
    const char* shape = vertices_[v].kind == VertexKind::kUnderlying ? "box"
                        : vertices_[v].kind == VertexKind::kObject   ? "ellipse"
                                                                     : "diamond";
    os << "  v" << v << " [label=\"" << vertices_[v].name << "\", shape=" << shape << "];\n";
  }
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (!vertices_[v].live) continue;
    for (const Edge& e : vertices_[v].out) {
      os << "  v" << v << " -> v" << e.to;
      os << " [label=\"" << e.weight;
      if (e.annotation) os << " : " << e.annotation->ToString(vertices_[v].name);
      os << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

const Graph::Vertex& Graph::At(VertexId v) const {
  if (!IsLive(v)) throw Error("ODG vertex " + std::to_string(v) + " is not live");
  return vertices_[v];
}

Graph::Vertex& Graph::At(VertexId v) {
  if (!IsLive(v)) throw Error("ODG vertex " + std::to_string(v) + " is not live");
  return vertices_[v];
}

}  // namespace qc::odg
