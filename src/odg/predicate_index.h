// Predicate-interval index over the annotated out-edges of one ODG vertex.
//
// Propagating an attribute update old→new through a column vertex with Q
// annotated out-edges costs Q annotation evaluations in the linear scan
// (odg/graph.cc). This index answers the same question — "which edges can
// fire?" — with two stabbing probes over structures keyed by the values the
// edges' atoms accept, so the cost is proportional to the number of edges
// that actually fire (plus logarithmic window bounds), not to Q.
//
// An atom's polarity-free truth value partitions the value space; an update
// flips the atom iff exactly one of old/new falls in the atom's accepting
// set (unknown counts as its own truth state, see Atom::Flips). Per atom
// class:
//   * eq / <> / single-member IN / degenerate BETWEEN  →  a point set:
//     postings in a hash map keyed by value. A probe toggles each posted
//     atom's parity at old and at new; atoms left with odd parity flipped
//     (an IN atom posted at both old and new cancels out — both members,
//     no flip).
//   * < ≤ > ≥  →  a ray: every such atom is membership-equivalent to
//     "v < a" or "v ≤ a" (>: complement of ≤ — same flip set). Stored in a
//     bound-keyed multimap; an update can flip a ray only if the bound lies
//     in [min(old,new), max(old,new)], so a window scan plus an exact
//     per-entry check is output-sensitive.
//   * BETWEEN a AND b  →  a closed interval, indexed by both endpoints;
//     membership can differ only if an endpoint lies in the probe window.
//   * IS NULL, NULL operands, empty IN, non-string LIKE patterns  →  truth
//     state is constant over non-null probe values: never flips, not stored.
//   * LIKE with wildcards (and any future opaque atom)  →  the whole edge
//     goes to an overflow list and is evaluated linearly per probe.
// Unannotated edges always fire and live on an always-list.
//
// Exactness: for non-null old/new the probe fires exactly the edges the
// linear scan fires (tests/odg/predicate_index_test.cc checks this
// differentially; docs/INVALIDATION.md sketches the argument). Probes where
// old or new is NULL are refused — NULL transitions change the
// true/false/unknown state of almost every atom class, so the caller falls
// back to the linear scan (sound and exact, counted as a fallback).
//
// @thread_safety Not synchronized; the owning Graph's caller provides
// exclusion (the DUP engine holds its registration lock in shared mode for
// probes, exclusive for maintenance).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "odg/annotation.h"

namespace qc::odg {

using VertexId = uint32_t;

class PredicateIndex {
 public:
  /// Index one out-edge to `to`. Unannotated edges (no annotation) always
  /// fire on updates. Must be called once per edge, including multi-edges
  /// to the same target (self-joins).
  void AddEdge(VertexId to, const EdgeAnnotation* annotation);

  /// Drop every posting of every edge targeting `to` (vertex removal,
  /// dependency rebuild). Idempotent.
  void RemoveTarget(VertexId to);

  /// Exact fired-edge targets for a value update old→new; both values must
  /// be non-null (callers fall back to the linear scan otherwise). Appends
  /// to `fired`; may contain duplicates (multi-edges, interval endpoints
  /// both in window) — callers dedupe, as Graph::Propagate already does.
  void ProbeUpdate(const Value& old_v, const Value& new_v, std::vector<VertexId>& fired) const;

  size_t indexed_targets() const { return by_target_.size() + always_.size() + overflow_.size(); }

 private:
  /// A point posting: `atom_id` groups the postings of one multi-point atom
  /// (IN) so that a probe hitting two of its members cancels to "no flip".
  struct PointEntry {
    VertexId to = 0;
    uint64_t atom_id = 0;
  };

  /// Membership(v) ⇔ closed ? v <= bound : v < bound (bound is the map key).
  struct RayEntry {
    VertexId to = 0;
    bool closed = false;
  };

  /// Closed interval [lo, hi]; stored under both endpoints.
  struct IntervalEntry {
    VertexId to = 0;
    Value lo, hi;
  };

  using RayMap = std::multimap<Value, RayEntry>;
  using IntervalMap = std::multimap<Value, IntervalEntry>;

  /// Per-target removal handles. Multimap iterators stay valid under other
  /// keys' erasures, so wholesale removal is O(postings of this target).
  struct TargetHandles {
    std::vector<Value> point_values;
    std::vector<RayMap::iterator> rays;
    std::vector<IntervalMap::iterator> interval_los;
    std::vector<IntervalMap::iterator> interval_his;
  };

  void IndexAtom(VertexId to, const Atom& atom, TargetHandles& handles);
  static bool RayMember(const Value& v, const Value& bound, bool closed) {
    return closed ? v <= bound : v < bound;
  }

  std::unordered_map<Value, std::vector<PointEntry>, ValueHash> points_;
  RayMap rays_;
  IntervalMap interval_lo_, interval_hi_;
  std::unordered_map<VertexId, TargetHandles> by_target_;
  /// target → edge multiplicity (unannotated edges: fire on every update).
  std::unordered_map<VertexId, uint32_t> always_;
  /// target → annotation copies of edges with an unindexable atom,
  /// evaluated linearly per probe. Copies, because Vertex::out reallocates.
  std::unordered_map<VertexId, std::vector<EdgeAnnotation>> overflow_;
  uint64_t next_atom_id_ = 0;
};

}  // namespace qc::odg
