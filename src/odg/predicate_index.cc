#include "odg/predicate_index.h"

#include <algorithm>
#include <unordered_set>

namespace qc::odg {

namespace {

/// How one atom participates in the update-flip index. Classification is
/// polarity-free (negation never changes *whether* the truth value
/// differs between two probe values, only which value it takes).
struct Classified {
  enum class Kind {
    kNever,        // truth state constant over non-null values: cannot flip
    kPoints,       // flips iff exactly one of old/new is a member point
    kRay,          // membership v < bound (closed: v <= bound)
    kInterval,     // membership lo <= v <= hi
    kUnindexable,  // LIKE with wildcards: edge goes to the overflow list
  };
  Kind kind = Kind::kNever;
  std::vector<Value> points;
  Value bound;
  bool closed = false;
  Value lo, hi;
};

Classified Classify(const Atom& atom) {
  Classified c;
  switch (atom.kind) {
    case Atom::Kind::kIsNull:
      // Non-null probes: RawEval is constantly false — never flips.
      return c;
    case Atom::Kind::kCmp: {
      if (atom.a.is_null()) return c;  // constantly unknown
      switch (atom.cmp_op) {
        case sql::BinaryOp::kEq:
        case sql::BinaryOp::kNe:
          // <> is the complement of =: identical flip set.
          c.kind = Classified::Kind::kPoints;
          c.points.push_back(atom.a);
          return c;
        case sql::BinaryOp::kLt:  // member v < a
        case sql::BinaryOp::kGe:  // complement of v < a: same flip set
          c.kind = Classified::Kind::kRay;
          c.bound = atom.a;
          c.closed = false;
          return c;
        case sql::BinaryOp::kLe:  // member v <= a
        case sql::BinaryOp::kGt:  // complement of v <= a
          c.kind = Classified::Kind::kRay;
          c.bound = atom.a;
          c.closed = true;
          return c;
        default:
          c.kind = Classified::Kind::kUnindexable;
          return c;
      }
    }
    case Atom::Kind::kBetween:
      if (atom.a.is_null() || atom.b.is_null()) return c;  // constantly unknown
      if (atom.b < atom.a) return c;                       // empty range: constantly false
      if (atom.a == atom.b) {
        c.kind = Classified::Kind::kPoints;
        c.points.push_back(atom.a);
        return c;
      }
      c.kind = Classified::Kind::kInterval;
      c.lo = atom.a;
      c.hi = atom.b;
      return c;
    case Atom::Kind::kIn: {
      // Non-members all share one truth state (false, or unknown when the
      // set contains NULL), so the flip set is exactly the member points.
      // Dedupe: a value posted twice for one atom would cancel its own
      // parity toggle.
      std::unordered_set<Value, ValueHash> seen;
      for (const Value& item : atom.set) {
        if (item.is_null()) continue;
        if (seen.insert(item).second) c.points.push_back(item);
      }
      if (c.points.empty()) return c;  // constant state: never flips
      c.kind = Classified::Kind::kPoints;
      return c;
    }
    case Atom::Kind::kLike:
      if (atom.a.is_null()) return c;        // constantly unknown
      if (!atom.a.is_string()) return c;     // constantly false
      c.kind = Classified::Kind::kUnindexable;
      return c;
  }
  c.kind = Classified::Kind::kUnindexable;
  return c;
}

}  // namespace

void PredicateIndex::IndexAtom(VertexId to, const Atom& atom, TargetHandles& handles) {
  Classified c = Classify(atom);
  switch (c.kind) {
    case Classified::Kind::kNever:
      break;
    case Classified::Kind::kPoints: {
      const uint64_t atom_id = next_atom_id_++;
      for (Value& v : c.points) {
        points_[v].push_back({to, atom_id});
        handles.point_values.push_back(std::move(v));
      }
      break;
    }
    case Classified::Kind::kRay:
      handles.rays.push_back(rays_.emplace(std::move(c.bound), RayEntry{to, c.closed}));
      break;
    case Classified::Kind::kInterval:
      handles.interval_los.push_back(interval_lo_.emplace(c.lo, IntervalEntry{to, c.lo, c.hi}));
      handles.interval_his.push_back(interval_hi_.emplace(c.hi, IntervalEntry{to, c.lo, c.hi}));
      break;
    case Classified::Kind::kUnindexable:
      break;  // handled at edge granularity in AddEdge
  }
}

void PredicateIndex::AddEdge(VertexId to, const EdgeAnnotation* annotation) {
  if (annotation == nullptr) {
    ++always_[to];
    return;
  }
  // An edge with any unindexable atom is evaluated linearly as a whole:
  // mixing (indexing some atoms, overflowing others) would fire it twice.
  for (const Atom& atom : annotation->atoms()) {
    if (Classify(atom).kind == Classified::Kind::kUnindexable) {
      overflow_[to].push_back(*annotation);
      return;
    }
  }
  TargetHandles& handles = by_target_[to];
  for (const Atom& atom : annotation->atoms()) IndexAtom(to, atom, handles);
}

void PredicateIndex::RemoveTarget(VertexId to) {
  always_.erase(to);
  overflow_.erase(to);
  auto it = by_target_.find(to);
  if (it == by_target_.end()) return;
  for (const Value& v : it->second.point_values) {
    auto pit = points_.find(v);
    if (pit == points_.end()) continue;  // earlier handle already scrubbed v
    std::erase_if(pit->second, [to](const PointEntry& e) { return e.to == to; });
    if (pit->second.empty()) points_.erase(pit);
  }
  for (RayMap::iterator rit : it->second.rays) rays_.erase(rit);
  for (IntervalMap::iterator iit : it->second.interval_los) interval_lo_.erase(iit);
  for (IntervalMap::iterator iit : it->second.interval_his) interval_hi_.erase(iit);
  by_target_.erase(it);
}

void PredicateIndex::ProbeUpdate(const Value& old_v, const Value& new_v,
                                 std::vector<VertexId>& fired) const {
  // Point atoms: parity toggle at both probe values. Atoms surviving with
  // odd parity are members of exactly one side — they flip.
  {
    std::unordered_map<uint64_t, VertexId> parity;
    auto toggle = [&parity](const std::vector<PointEntry>& entries) {
      for (const PointEntry& e : entries) {
        auto [it, inserted] = parity.emplace(e.atom_id, e.to);
        if (!inserted) parity.erase(it);
      }
    };
    if (auto it = points_.find(old_v); it != points_.end()) toggle(it->second);
    if (auto it = points_.find(new_v); it != points_.end()) toggle(it->second);
    for (const auto& [atom_id, to] : parity) fired.push_back(to);
  }

  const Value& lo = old_v < new_v ? old_v : new_v;
  const Value& hi = old_v < new_v ? new_v : old_v;
  if (!(lo == hi)) {
    // Rays: membership can differ only if the bound lies in [lo, hi]
    // (closed rays flip for bounds in [lo, hi), open ones for (lo, hi];
    // the inclusive window over-scans at most the boundary-equal entries,
    // and each candidate is verified exactly).
    for (auto it = rays_.lower_bound(lo); it != rays_.end() && !(hi < it->first); ++it) {
      if (RayMember(old_v, it->first, it->second.closed) !=
          RayMember(new_v, it->first, it->second.closed)) {
        fired.push_back(it->second.to);
      }
    }
    // Intervals: membership can differ only if an endpoint lies in the
    // window. Scan both endpoint maps; an interval found via both endpoints
    // is emitted twice, which downstream dedup absorbs.
    auto interval_member = [](const Value& v, const IntervalEntry& e) {
      return !(v < e.lo) && !(e.hi < v);
    };
    auto scan = [&](const IntervalMap& map) {
      for (auto it = map.lower_bound(lo); it != map.end() && !(hi < it->first); ++it) {
        if (interval_member(old_v, it->second) != interval_member(new_v, it->second)) {
          fired.push_back(it->second.to);
        }
      }
    };
    scan(interval_lo_);
    scan(interval_hi_);
  }

  for (const auto& [to, annotations] : overflow_) {
    for (const EdgeAnnotation& annotation : annotations) {
      if (annotation.AffectedByUpdate(old_v, new_v)) {
        fired.push_back(to);
        break;
      }
    }
  }
  for (const auto& [to, count] : always_) fired.push_back(to);
}

}  // namespace qc::odg
