// The Object Dependence Graph (ODG) of the DUP algorithm (paper §4).
//
// Vertices represent underlying data (attribute columns), cached objects
// (query results, web pages), or intermediate composite data. A directed
// edge (v, u) means "a change to v also affects u"; changes propagate
// transitively. Edges carry optional weights (Fig. 2 — used for
// obsolescence accounting) and optional value annotations (Fig. 4 — the
// value-aware enhancement).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "odg/annotation.h"

namespace qc::odg {

using VertexId = uint32_t;

enum class VertexKind {
  kUnderlying,    // no incoming edges in a simple ODG (paper Fig. 3)
  kObject,        // cacheable entity; no outgoing edges in a simple ODG
  kIntermediate,  // composite data in multi-level graphs (paper Fig. 2)
};

/// What changed at a source vertex; annotated edges gate on it.
struct ChangeSpec {
  enum class Kind {
    kGeneric,      // unknown change: every edge fires
    kValueUpdate,  // attribute update old→new: annotated edges check Flips
    kRowValue,     // insert/delete with column value v: annotated edges
                   // check the satisfying filter
  };

  Kind kind = Kind::kGeneric;
  Value old_value;
  Value new_value;  // also holds v for kRowValue

  static ChangeSpec Generic() { return {}; }
  static ChangeSpec Update(Value old_v, Value new_v) {
    ChangeSpec s;
    s.kind = Kind::kValueUpdate;
    s.old_value = std::move(old_v);
    s.new_value = std::move(new_v);
    return s;
  }
  static ChangeSpec RowValue(Value v) {
    ChangeSpec s;
    s.kind = Kind::kRowValue;
    s.new_value = std::move(v);
    return s;
  }
};

class Graph {
 public:
  struct Edge {
    VertexId from = 0;
    VertexId to = 0;
    double weight = 1.0;
    std::optional<EdgeAnnotation> annotation;
  };

  /// Add a vertex with a unique name; throws Error if the name exists.
  VertexId AddVertex(const std::string& name, VertexKind kind);

  /// Find an existing vertex or create it.
  VertexId GetOrAdd(const std::string& name, VertexKind kind);

  std::optional<VertexId> Find(const std::string& name) const;
  const std::string& NameOf(VertexId v) const;
  VertexKind KindOf(VertexId v) const;
  bool IsLive(VertexId v) const;

  void AddEdge(VertexId from, VertexId to, double weight = 1.0,
               std::optional<EdgeAnnotation> annotation = std::nullopt);

  /// Remove a vertex and all incident edges (cached object evicted).
  void RemoveVertex(VertexId v);

  /// Drop every edge targeting `v`, keeping the vertex and its outgoing
  /// edges (used when an object's dependency set is being rebuilt).
  void RemoveInEdges(VertexId v);

  size_t VertexCount() const { return live_count_; }
  size_t EdgeCount() const { return edge_count_; }
  size_t OutDegree(VertexId v) const;
  const std::vector<Edge>& OutEdges(VertexId v) const;

  /// Propagate a change at `source` through the graph. An edge whose
  /// annotation rejects the ChangeSpec does not fire; transitive edges
  /// beyond the first hop see a Generic change (annotations constrain the
  /// attribute→object hop only). Returns every distinct affected vertex
  /// (excluding the source), in discovery order.
  std::vector<VertexId> Propagate(VertexId source, const ChangeSpec& spec) const;

  /// Weighted-DUP accounting (paper Fig. 2): like Propagate, but each
  /// affected vertex also accumulates the maximum-weight path from the
  /// source into its obsolescence counter. Callers compare against a
  /// threshold to decide between keeping a "slightly obsolete" object and
  /// invalidating it.
  std::vector<VertexId> PropagateWeighted(VertexId source, const ChangeSpec& spec);

  double ObsolescenceOf(VertexId v) const;
  void ResetObsolescence(VertexId v);

  /// Graphviz rendering for docs and debugging.
  std::string ToDot() const;

 private:
  struct Vertex {
    std::string name;
    VertexKind kind = VertexKind::kObject;
    bool live = false;
    double obsolescence = 0.0;
    std::vector<Edge> out;
    std::vector<VertexId> in;  // sources, for O(degree) removal
  };

  const Vertex& At(VertexId v) const;
  Vertex& At(VertexId v);
  bool EdgeFires(const Edge& edge, const ChangeSpec& spec) const;

  std::vector<Vertex> vertices_;
  std::unordered_map<std::string, VertexId> by_name_;
  std::vector<VertexId> free_ids_;
  size_t live_count_ = 0;
  size_t edge_count_ = 0;
};

}  // namespace qc::odg
