// The Object Dependence Graph (ODG) of the DUP algorithm (paper §4).
//
// Vertices represent underlying data (attribute columns), cached objects
// (query results, web pages), or intermediate composite data. A directed
// edge (v, u) means "a change to v also affects u"; changes propagate
// transitively. Edges carry optional weights (Fig. 2 — used for
// obsolescence accounting) and optional value annotations (Fig. 4 — the
// value-aware enhancement).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "odg/annotation.h"
#include "odg/predicate_index.h"

namespace qc::odg {

enum class VertexKind {
  kUnderlying,    // no incoming edges in a simple ODG (paper Fig. 3)
  kObject,        // cacheable entity; no outgoing edges in a simple ODG
  kIntermediate,  // composite data in multi-level graphs (paper Fig. 2)
};

/// What changed at a source vertex; annotated edges gate on it.
struct ChangeSpec {
  enum class Kind {
    kGeneric,      // unknown change: every edge fires
    kValueUpdate,  // attribute update old→new: annotated edges check Flips
    kRowValue,     // insert/delete with column value v: annotated edges
                   // check the satisfying filter
  };

  Kind kind = Kind::kGeneric;
  Value old_value;
  Value new_value;  // also holds v for kRowValue

  static ChangeSpec Generic() { return {}; }
  static ChangeSpec Update(Value old_v, Value new_v) {
    ChangeSpec s;
    s.kind = Kind::kValueUpdate;
    s.old_value = std::move(old_v);
    s.new_value = std::move(new_v);
    return s;
  }
  static ChangeSpec RowValue(Value v) {
    ChangeSpec s;
    s.kind = Kind::kRowValue;
    s.new_value = std::move(v);
    return s;
  }
};

class Graph {
 public:
  struct Edge {
    VertexId from = 0;
    VertexId to = 0;
    double weight = 1.0;
    std::optional<EdgeAnnotation> annotation;
  };

  /// Add a vertex with a unique name; throws Error if the name exists.
  VertexId AddVertex(const std::string& name, VertexKind kind);

  /// Find an existing vertex or create it.
  VertexId GetOrAdd(const std::string& name, VertexKind kind);

  std::optional<VertexId> Find(const std::string& name) const;
  const std::string& NameOf(VertexId v) const;
  VertexKind KindOf(VertexId v) const;
  bool IsLive(VertexId v) const;

  void AddEdge(VertexId from, VertexId to, double weight = 1.0,
               std::optional<EdgeAnnotation> annotation = std::nullopt);

  /// Remove a vertex and all incident edges (cached object evicted).
  void RemoveVertex(VertexId v);

  /// Drop every edge targeting `v`, keeping the vertex and its outgoing
  /// edges (used when an object's dependency set is being rebuilt).
  void RemoveInEdges(VertexId v);

  size_t VertexCount() const { return live_count_; }
  size_t EdgeCount() const { return edge_count_; }
  size_t OutDegree(VertexId v) const;
  const std::vector<Edge>& OutEdges(VertexId v) const;

  /// Propagate a change at `source` through the graph. An edge whose
  /// annotation rejects the ChangeSpec does not fire; transitive edges
  /// beyond the first hop see a Generic change (annotations constrain the
  /// attribute→object hop only). Returns every distinct affected vertex
  /// (excluding the source), in discovery order.
  ///
  /// kValueUpdate changes with non-null old/new values are answered from
  /// the source's predicate-interval index when enabled — output-sensitive
  /// instead of out-degree-linear, with identical results (see
  /// odg/predicate_index.h). Null-valued updates, kGeneric and kRowValue
  /// changes take the linear scan.
  std::vector<VertexId> Propagate(VertexId source, const ChangeSpec& spec) const;

  /// Maintain (and serve Propagate from) per-vertex predicate-interval
  /// indexes over annotated out-edges. Enabled by default; disabling gives
  /// the pure linear scan (differential baseline, benchmarks). Toggling
  /// rebuilds the indexes from the current edges, so it is valid at any
  /// time but not concurrently with other access.
  void SetPredicateIndexEnabled(bool enabled);
  bool predicate_index_enabled() const { return predicate_index_enabled_; }

  /// Probe accounting (relaxed atomics: Propagate stays const and safe for
  /// concurrent readers): indexed update probes served, and update
  /// propagations that fell back to the linear scan because a NULL-valued
  /// side made the probe unanswerable.
  uint64_t index_probes() const { return index_probes_.load(std::memory_order_relaxed); }
  uint64_t index_fallbacks() const { return index_fallbacks_.load(std::memory_order_relaxed); }

  /// Weighted-DUP accounting (paper Fig. 2): like Propagate, but each
  /// affected vertex also accumulates the maximum-weight path from the
  /// source into its obsolescence counter. Callers compare against a
  /// threshold to decide between keeping a "slightly obsolete" object and
  /// invalidating it.
  std::vector<VertexId> PropagateWeighted(VertexId source, const ChangeSpec& spec);

  double ObsolescenceOf(VertexId v) const;
  void ResetObsolescence(VertexId v);

  /// Graphviz rendering for docs and debugging.
  std::string ToDot() const;

 private:
  struct Vertex {
    std::string name;
    VertexKind kind = VertexKind::kObject;
    bool live = false;
    double obsolescence = 0.0;
    std::vector<Edge> out;
    std::vector<VertexId> in;  // sources, for O(degree) removal
    /// Update-flip index over `out` (lazily created on first edge while
    /// indexing is enabled; null = fall back to the linear scan).
    std::unique_ptr<PredicateIndex> index;
  };

  const Vertex& At(VertexId v) const;
  Vertex& At(VertexId v);
  bool EdgeFires(const Edge& edge, const ChangeSpec& spec) const;
  void IndexEdge(Vertex& src, const Edge& edge);

  std::vector<Vertex> vertices_;
  std::unordered_map<std::string, VertexId> by_name_;
  std::vector<VertexId> free_ids_;
  size_t live_count_ = 0;
  size_t edge_count_ = 0;
  bool predicate_index_enabled_ = true;
  mutable std::atomic<uint64_t> index_probes_{0};
  mutable std::atomic<uint64_t> index_fallbacks_{0};
};

}  // namespace qc::odg
