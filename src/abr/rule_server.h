// The Accessible Business Rules (ABR) rule server (paper §2, §4.2).
//
// Rules are persistent RuleUse entities with 13 business-context
// attributes, stored in RULEUSETABLE and selected by decision points
// through constraint queries. The server front-ends every query with the
// cached query engine, so rule lookups hit the GPS cache and rule
// administration (attribute set / create / delete — paper Fig. 6/7)
// triggers selective DUP invalidation automatically.
//
// Query results are *references* (rule ids), matching the paper's proxy
// semantics: attribute reads (step 7 "get") go to the live entity, so the
// engine runs with include_projection = false and the ODGs contain exactly
// the WHERE-clause attributes, as in paper Fig. 5.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "middleware/query_engine.h"
#include "storage/database.h"

namespace qc::abr {

using RuleId = int64_t;

/// The 13 business attributes of a RuleUse (paper: "constraints on all or
/// a subset of the 13 attributes of the rule"), plus the immutable RULEID
/// identity column the queries project.
struct RuleUseData {
  std::string name;
  std::string context_id;          // e.g. "customerLevel", "promotion"
  std::string type;                // "classifier" | "situational" | ...
  std::string classification;      // e.g. "Gold" (situational rules)
  std::string completion_status = "ready";  // "ready" | "draft" | "retired"
  int64_t priority = 0;
  std::string folder;
  int64_t start_date = 0;          // yyyymmdd
  int64_t end_date = 99'99'99'99;
  std::string implementation;      // rule-registry key fired at run time
  std::string init_params;
  std::string owner;
  int64_t version = 1;
};

/// One of the server's canned queries (the "23 queries" of §4.2).
struct NamedQuery {
  std::string name;
  std::string sql;
  uint32_t param_count = 0;
};

/// All 23 server queries. All but one are static or parameterized; the
/// last exercises the dynamic-SQL path.
const std::vector<NamedQuery>& ServerQueries();

class RuleServer {
 public:
  /// Creates RULEUSETABLE in `db` and a cached query engine over it.
  RuleServer(storage::Database& db, middleware::CachedQueryEngine::Options options = DefaultOptions());

  static middleware::CachedQueryEngine::Options DefaultOptions();

  // --- administration (paper Fig. 7, steps 5/8/9) -------------------------

  RuleId CreateRuleUse(const RuleUseData& data);
  void DeleteRuleUse(RuleId id);

  /// Paper Fig. 6: the attribute setter with generated invalidation code.
  /// `attribute` is one of the 13 names (e.g. "CONTEXTID"); no-op sets do
  /// not invalidate.
  void SetAttribute(RuleId id, const std::string& attribute, const Value& value);

  // --- lifecycle (draft -> ready -> retired) -------------------------------
  // Completion-status transitions are guarded: promoting a retired rule or
  // retiring a draft throws Error. Every transition is an attribute set,
  // so cached queries constrained on COMPLETIONSTATUS invalidate exactly
  // when a rule enters/leaves their status.

  void Promote(RuleId id);    // draft -> ready
  void Retire(RuleId id);     // ready -> retired
  void Reinstate(RuleId id);  // retired -> draft (for rework)

  /// Replace a rule's behavior; bumps VERSION (a new draft iteration keeps
  /// consumers of findByVersionAtLeast honest).
  void UpdateImplementation(RuleId id, const std::string& implementation,
                            const std::string& init_params);

  /// Copy a rule as a new draft under `new_name` (the edit-then-promote
  /// administration workflow).
  RuleId CloneAsDraft(RuleId id, const std::string& new_name);

  bool Exists(RuleId id) const;
  Value GetAttribute(RuleId id, const std::string& attribute) const;  // step 7 "get"
  RuleUseData GetRuleUse(RuleId id) const;

  // --- querying (paper Fig. 7, steps 1–4) ----------------------------------

  struct FindResult {
    std::vector<RuleId> rules;
    bool cache_hit = false;
  };

  /// Run one of the named server queries.
  FindResult Find(const std::string& query_name, const std::vector<Value>& params = {});

  /// Dynamic SQL path (must project RULEID).
  FindResult FindDynamic(const std::string& sql, const std::vector<Value>& params = {});

  /// The two §4.2 web-shopping queries, by their paper names.
  FindResult FindClassifiers(const std::string& context_id);           // Q1
  FindResult FindPromotions(const std::string& classification);       // Q2($1)

  middleware::CachedQueryEngine& engine() { return *engine_; }
  storage::Table& table() { return *table_; }
  size_t rule_count() const { return table_->size(); }

 private:
  uint32_t AttributeIndex(const std::string& attribute) const;
  FindResult ToFindResult(const middleware::CachedQueryEngine::ExecuteResult& exec) const;

  storage::Table* table_ = nullptr;
  std::unique_ptr<middleware::CachedQueryEngine> engine_;
  std::unordered_map<std::string, std::shared_ptr<const sql::BoundQuery>> queries_;
  int64_t next_id_ = 1;
};

}  // namespace qc::abr
