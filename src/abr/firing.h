// Rule firing and decision points (paper §2, §4.2).
//
// A decision point is a structured exit from the application's core logic:
// it queries the rule server for the rules that apply in the current
// business context and "fires" them. Rule behavior lives in a registry of
// named implementations; a RuleUse row names its implementation and
// carries its configuration in INITPARAMS.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "abr/rule_server.h"

namespace qc::abr {

/// The situational business context a decision point runs in (e.g.
/// {"monthlySpend": 1200, "season": "summer"}).
using RuleContext = std::map<std::string, Value>;

/// A fired rule sees its own RuleUse entity (live reads via the server —
/// the paper's step 7 "get") and the run-time context, and returns a value
/// (a classification, a content fragment, a decision...).
class RuleUseView {
 public:
  RuleUseView(RuleServer& server, RuleId id) : server_(server), id_(id) {}

  RuleId id() const { return id_; }
  Value Get(const std::string& attribute) const { return server_.GetAttribute(id_, attribute); }
  std::string GetString(const std::string& attribute) const {
    const Value v = Get(attribute);
    return v.is_null() ? std::string() : v.as_string();
  }
  int64_t GetInt(const std::string& attribute) const { return Get(attribute).as_int(); }

 private:
  RuleServer& server_;
  RuleId id_;
};

using RuleImpl = std::function<Value(const RuleUseView& rule, const RuleContext& context)>;

class RuleRegistry {
 public:
  void Register(const std::string& name, RuleImpl impl);
  bool Has(const std::string& name) const { return impls_.count(name) > 0; }

  /// Fire every rule in `rules` (in priority order, highest first) and
  /// collect the non-NULL results. Rules whose implementation is missing
  /// throw — a misconfigured rule base is a deployment error.
  std::vector<Value> Fire(RuleServer& server, const std::vector<RuleId>& rules,
                          const RuleContext& context) const;

 private:
  std::map<std::string, RuleImpl> impls_;
};

/// A generic trigger point: the named "structured exit point from the main
/// application logic" of paper §2. Binds one of the rule server's canned
/// queries to the run-time context keys that feed its parameters; firing
/// selects the applicable rules and runs them.
class TriggerPoint {
 public:
  /// `context_keys[i]` names the RuleContext entry bound to parameter $i+1
  /// of `query_name`. A missing context key at Fire time throws.
  TriggerPoint(RuleServer& server, const RuleRegistry& registry, std::string query_name,
               std::vector<std::string> context_keys);

  struct Outcome {
    std::vector<RuleId> rules;
    std::vector<Value> results;
    bool cache_hit = false;
  };

  Outcome Fire(const RuleContext& context);

 private:
  RuleServer& server_;
  const RuleRegistry& registry_;
  std::string query_name_;
  std::vector<std::string> context_keys_;
};

/// The two-phase decision point of the paper's Web-shopping scenario:
/// fire classifier rules for `classifier_context` to classify the shopper,
/// then fetch and fire the situational content rules for each resulting
/// classification.
class ClassifyAndSelectDecisionPoint {
 public:
  ClassifyAndSelectDecisionPoint(RuleServer& server, const RuleRegistry& registry,
                                 std::string classifier_context)
      : server_(server), registry_(registry), classifier_context_(std::move(classifier_context)) {}

  struct Outcome {
    std::vector<std::string> classifications;  // from firing Q1's rules
    std::vector<Value> content;                // from firing Q2's rules
    bool q1_cache_hit = false;
    bool q2_cache_hit = false;  // true only if every Q2 lookup hit
  };

  Outcome Run(const RuleContext& context);

 private:
  RuleServer& server_;
  const RuleRegistry& registry_;
  std::string classifier_context_;
};

}  // namespace qc::abr
