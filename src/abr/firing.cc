#include "abr/firing.h"

#include <algorithm>

#include "common/error.h"

namespace qc::abr {

void RuleRegistry::Register(const std::string& name, RuleImpl impl) {
  impls_[name] = std::move(impl);
}

std::vector<Value> RuleRegistry::Fire(RuleServer& server, const std::vector<RuleId>& rules,
                                      const RuleContext& context) const {
  // Priority order, highest first; ties resolve by rule id for determinism.
  std::vector<std::pair<int64_t, RuleId>> ordered;
  ordered.reserve(rules.size());
  for (RuleId id : rules) {
    ordered.emplace_back(server.GetAttribute(id, "PRIORITY").as_int(), id);
  }
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  std::vector<Value> results;
  for (const auto& [priority, id] : ordered) {
    RuleUseView view(server, id);
    const std::string impl_name = view.GetString("IMPLEMENTATION");
    auto it = impls_.find(impl_name);
    if (it == impls_.end()) {
      throw Error("rule " + std::to_string(id) + " names unknown implementation '" + impl_name +
                  "'");
    }
    Value result = it->second(view, context);
    if (!result.is_null()) results.push_back(std::move(result));
  }
  return results;
}

TriggerPoint::TriggerPoint(RuleServer& server, const RuleRegistry& registry,
                           std::string query_name, std::vector<std::string> context_keys)
    : server_(server),
      registry_(registry),
      query_name_(std::move(query_name)),
      context_keys_(std::move(context_keys)) {}

TriggerPoint::Outcome TriggerPoint::Fire(const RuleContext& context) {
  std::vector<Value> params;
  params.reserve(context_keys_.size());
  for (const std::string& key : context_keys_) {
    auto it = context.find(key);
    if (it == context.end()) {
      throw Error("trigger point '" + query_name_ + "' needs context key '" + key + "'");
    }
    params.push_back(it->second);
  }
  auto found = server_.Find(query_name_, params);
  Outcome outcome;
  outcome.rules = found.rules;
  outcome.cache_hit = found.cache_hit;
  outcome.results = registry_.Fire(server_, outcome.rules, context);
  return outcome;
}

ClassifyAndSelectDecisionPoint::Outcome ClassifyAndSelectDecisionPoint::Run(
    const RuleContext& context) {
  Outcome outcome;

  // Phase 1 (paper Q1): classifier rules for the context.
  auto classifiers = server_.FindClassifiers(classifier_context_);
  outcome.q1_cache_hit = classifiers.cache_hit;
  for (const Value& v : registry_.Fire(server_, classifiers.rules, context)) {
    if (v.is_string()) outcome.classifications.push_back(v.as_string());
  }

  // Phase 2 (paper Q2($1)): situational content rules per classification.
  outcome.q2_cache_hit = !outcome.classifications.empty();
  for (const std::string& classification : outcome.classifications) {
    auto promotions = server_.FindPromotions(classification);
    outcome.q2_cache_hit = outcome.q2_cache_hit && promotions.cache_hit;
    for (Value& v : registry_.Fire(server_, promotions.rules, context)) {
      outcome.content.push_back(std::move(v));
    }
  }
  return outcome;
}

}  // namespace qc::abr
