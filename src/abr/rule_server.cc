#include "abr/rule_server.h"

#include "common/error.h"
#include "common/strings.h"

namespace qc::abr {

namespace {

constexpr const char* kTableName = "RULEUSETABLE";

// Column order: RULEID + the 13 business attributes.
const std::vector<storage::ColumnDef>& Columns() {
  static const std::vector<storage::ColumnDef> kColumns = {
      {"RULEID", ValueType::kInt, false},
      {"NAME", ValueType::kString, false},
      {"CONTEXTID", ValueType::kString, false},
      {"TYPE", ValueType::kString, false},
      {"CLASSIFICATION", ValueType::kString, true},
      {"COMPLETIONSTATUS", ValueType::kString, false},
      {"PRIORITY", ValueType::kInt, false},
      {"FOLDER", ValueType::kString, true},
      {"STARTDATE", ValueType::kInt, false},
      {"ENDDATE", ValueType::kInt, false},
      {"IMPLEMENTATION", ValueType::kString, true},
      {"INITPARAMS", ValueType::kString, true},
      {"OWNER", ValueType::kString, true},
      {"VERSION", ValueType::kInt, false},
  };
  return kColumns;
}

std::string Select(const std::string& where) {
  return "SELECT RULEID FROM RULEUSETABLE WHERE " + where;
}

}  // namespace

const std::vector<NamedQuery>& ServerQueries() {
  static const std::vector<NamedQuery> kQueries = {
      // The §4.2 pair first (Q1 static, Q2 parameterized).
      {"findClassifiers",
       Select("CONTEXTID LIKE $1 AND TYPE LIKE 'classifier' AND COMPLETIONSTATUS LIKE 'ready'"), 1},
      {"findPromotions",
       Select("CONTEXTID LIKE 'promotion' AND CLASSIFICATION LIKE $1 AND TYPE LIKE 'situational' "
              "AND COMPLETIONSTATUS LIKE 'ready'"), 1},
      {"findAllReady", Select("COMPLETIONSTATUS = 'ready'"), 0},
      {"findByName", Select("NAME = $1"), 1},
      {"findByContext", Select("CONTEXTID = $1"), 1},
      {"findReadyByContext", Select("CONTEXTID = $1 AND COMPLETIONSTATUS = 'ready'"), 1},
      {"findSituational",
       Select("CONTEXTID = $1 AND CLASSIFICATION = $2 AND TYPE = 'situational' AND "
              "COMPLETIONSTATUS = 'ready'"), 2},
      {"findByType", Select("TYPE = $1"), 1},
      {"findByFolder", Select("FOLDER = $1"), 1},
      {"findByFolderReady", Select("FOLDER = $1 AND COMPLETIONSTATUS = 'ready'"), 1},
      {"findByOwner", Select("OWNER = $1"), 1},
      {"findByClassification", Select("CLASSIFICATION = $1"), 1},
      {"findByContextAndType", Select("CONTEXTID = $1 AND TYPE = $2"), 2},
      {"findActiveAt",
       Select("STARTDATE <= $1 AND ENDDATE >= $1 AND COMPLETIONSTATUS = 'ready'"), 1},
      {"findReadyActiveByContext",
       Select("CONTEXTID = $1 AND STARTDATE <= $2 AND ENDDATE >= $2 AND COMPLETIONSTATUS = "
              "'ready'"), 2},
      {"findByPriorityAtLeast", Select("PRIORITY >= $1"), 1},
      {"findByPriorityBetween", Select("PRIORITY BETWEEN $1 AND $2"), 2},
      {"findByContextPrioritized", Select("CONTEXTID = $1 AND PRIORITY >= $2"), 2},
      {"findDrafts", Select("COMPLETIONSTATUS = 'draft'"), 0},
      {"findRetired", Select("COMPLETIONSTATUS = 'retired'"), 0},
      {"findByVersionAtLeast", Select("VERSION >= $1"), 1},
      {"findByOwnerAndFolder", Select("OWNER = $1 AND FOLDER = $2"), 2},
      {"findByContextNotClassification",
       Select("CONTEXTID = $1 AND NOT CLASSIFICATION = $2"), 2},
  };
  return kQueries;
}

middleware::CachedQueryEngine::Options RuleServer::DefaultOptions() {
  middleware::CachedQueryEngine::Options options;
  // Reference-style results: the ODG holds exactly the WHERE attributes
  // (paper Fig. 5); RULEID projections are identity references.
  options.extraction.include_projection = false;
  return options;
}

RuleServer::RuleServer(storage::Database& db, middleware::CachedQueryEngine::Options options) {
  table_ = &db.CreateTable(kTableName, storage::Schema(Columns()));
  // Equality indexes on the attributes the 23 queries anchor on, ordered
  // indexes where ranges occur (dates, priority).
  for (const char* name : {"RULEID", "NAME", "CONTEXTID", "TYPE", "CLASSIFICATION",
                           "COMPLETIONSTATUS", "FOLDER", "OWNER", "IMPLEMENTATION"}) {
    table_->CreateHashIndex(table_->schema().Require(name));
  }
  for (const char* name : {"PRIORITY", "STARTDATE", "ENDDATE", "VERSION"}) {
    table_->CreateOrderedIndex(table_->schema().Require(name));
  }
  engine_ = std::make_unique<middleware::CachedQueryEngine>(db, std::move(options));
  for (const NamedQuery& query : ServerQueries()) {
    queries_.emplace(query.name, engine_->Prepare(query.sql));
  }
}

RuleId RuleServer::CreateRuleUse(const RuleUseData& data) {
  const RuleId id = next_id_++;
  table_->Insert({Value(id), Value(data.name), Value(data.context_id), Value(data.type),
                  Value(data.classification), Value(data.completion_status), Value(data.priority),
                  Value(data.folder), Value(data.start_date), Value(data.end_date),
                  Value(data.implementation), Value(data.init_params), Value(data.owner),
                  Value(data.version)});
  return id;
}

namespace {

storage::RowId RowOf(const storage::Table& table, RuleId id) {
  const auto& rows = table.LookupEqual(0, Value(id));
  if (rows.empty()) throw StorageError("unknown rule id " + std::to_string(id));
  return rows.front();
}

}  // namespace

void RuleServer::DeleteRuleUse(RuleId id) { table_->Delete(RowOf(*table_, id)); }

uint32_t RuleServer::AttributeIndex(const std::string& attribute) const {
  const uint32_t index = table_->schema().Require(attribute);
  if (index == 0) throw StorageError("RULEID is immutable");
  return index;
}

void RuleServer::SetAttribute(RuleId id, const std::string& attribute, const Value& value) {
  table_->Update(RowOf(*table_, id), AttributeIndex(attribute), value);
}

namespace {

void RequireStatus(const std::string& actual, const std::string& expected,
                   const char* transition) {
  if (actual != expected) {
    throw Error(std::string("lifecycle: ") + transition + " requires status '" + expected +
                "', rule is '" + actual + "'");
  }
}

}  // namespace

void RuleServer::Promote(RuleId id) {
  RequireStatus(GetAttribute(id, "COMPLETIONSTATUS").as_string(), "draft", "Promote");
  SetAttribute(id, "COMPLETIONSTATUS", Value("ready"));
}

void RuleServer::Retire(RuleId id) {
  RequireStatus(GetAttribute(id, "COMPLETIONSTATUS").as_string(), "ready", "Retire");
  SetAttribute(id, "COMPLETIONSTATUS", Value("retired"));
}

void RuleServer::Reinstate(RuleId id) {
  RequireStatus(GetAttribute(id, "COMPLETIONSTATUS").as_string(), "retired", "Reinstate");
  SetAttribute(id, "COMPLETIONSTATUS", Value("draft"));
}

void RuleServer::UpdateImplementation(RuleId id, const std::string& implementation,
                                      const std::string& init_params) {
  SetAttribute(id, "IMPLEMENTATION", Value(implementation));
  SetAttribute(id, "INITPARAMS", Value(init_params));
  SetAttribute(id, "VERSION", Value(GetAttribute(id, "VERSION").as_int() + 1));
}

RuleId RuleServer::CloneAsDraft(RuleId id, const std::string& new_name) {
  RuleUseData data = GetRuleUse(id);
  data.name = new_name;
  data.completion_status = "draft";
  data.version = data.version + 1;
  return CreateRuleUse(data);
}

bool RuleServer::Exists(RuleId id) const {
  return !table_->LookupEqual(0, Value(id)).empty();
}

Value RuleServer::GetAttribute(RuleId id, const std::string& attribute) const {
  return table_->Get(RowOf(*table_, id), table_->schema().Require(attribute));
}

RuleUseData RuleServer::GetRuleUse(RuleId id) const {
  const storage::Row row = table_->GetRow(RowOf(*table_, id));
  RuleUseData data;
  data.name = row[1].as_string();
  data.context_id = row[2].as_string();
  data.type = row[3].as_string();
  data.classification = row[4].is_null() ? "" : row[4].as_string();
  data.completion_status = row[5].as_string();
  data.priority = row[6].as_int();
  data.folder = row[7].is_null() ? "" : row[7].as_string();
  data.start_date = row[8].as_int();
  data.end_date = row[9].as_int();
  data.implementation = row[10].is_null() ? "" : row[10].as_string();
  data.init_params = row[11].is_null() ? "" : row[11].as_string();
  data.owner = row[12].is_null() ? "" : row[12].as_string();
  data.version = row[13].as_int();
  return data;
}

RuleServer::FindResult RuleServer::ToFindResult(
    const middleware::CachedQueryEngine::ExecuteResult& exec) const {
  if (exec.result->columns().empty() || ToUpper(exec.result->columns().front()) != "RULEID") {
    throw Error("rule-server queries must project RULEID first (got '" +
                (exec.result->columns().empty() ? std::string("<none>")
                                                : exec.result->columns().front()) +
                "')");
  }
  FindResult out;
  out.cache_hit = exec.cache_hit;
  out.rules.reserve(exec.result->row_count());
  for (const storage::Row& row : exec.result->rows()) out.rules.push_back(row.at(0).as_int());
  return out;
}

RuleServer::FindResult RuleServer::Find(const std::string& query_name,
                                        const std::vector<Value>& params) {
  auto it = queries_.find(query_name);
  if (it == queries_.end()) throw Error("unknown server query: " + query_name);
  return ToFindResult(engine_->Execute(it->second, params));
}

RuleServer::FindResult RuleServer::FindDynamic(const std::string& sql,
                                               const std::vector<Value>& params) {
  return ToFindResult(engine_->ExecuteSql(sql, params));
}

RuleServer::FindResult RuleServer::FindClassifiers(const std::string& context_id) {
  return Find("findClassifiers", {Value(context_id)});
}

RuleServer::FindResult RuleServer::FindPromotions(const std::string& classification) {
  return Find("findPromotions", {Value(classification)});
}

}  // namespace qc::abr
