// Small string helpers shared by the SQL front end and the cache logging.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qc {

/// ASCII upper-casing (SQL keywords and identifiers are case-insensitive).
std::string ToUpper(std::string_view s);

/// SQL LIKE matching with '%' (any run) and '_' (any one char) wildcards.
/// Matching is case-sensitive, as in the paper's DB2 deployment.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Join `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace qc
