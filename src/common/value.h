// Dynamically-typed scalar value used throughout the storage and query
// layers: column cells, query parameters, predicate constants and edge
// annotations are all `qc::Value`.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>

namespace qc {

enum class ValueType { kNull, kInt, kDouble, kString };

/// A scalar SQL value: NULL, 64-bit integer, double, or string.
///
/// Ordering follows SQL-ish semantics with a total order so values can key
/// ordered containers: NULL sorts before everything, ints and doubles
/// compare numerically with each other, strings compare lexicographically,
/// and across non-numeric type classes the type tag orders (so the order is
/// total even for heterogeneous columns, which well-typed tables avoid).
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  Value(int64_t v) : rep_(v) {}            // NOLINT(google-explicit-constructor)
  Value(int v) : rep_(int64_t{v}) {}       // NOLINT(google-explicit-constructor)
  Value(double v) : rep_(v) {}             // NOLINT(google-explicit-constructor)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Accessors require the matching type; misuse is a programming error and
  /// throws std::bad_variant_access.
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  /// Numeric view: ints widen to double. Throws if not numeric.
  double numeric() const;

  /// Total-order comparison (see class comment). NULL == NULL here, which
  /// is what container keys need; SQL three-valued logic is applied by the
  /// expression evaluator, not by this class.
  std::strong_ordering compare(const Value& other) const;

  bool operator==(const Value& other) const { return compare(other) == std::strong_ordering::equal; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return compare(other) == std::strong_ordering::less; }
  bool operator<=(const Value& other) const { return compare(other) != std::strong_ordering::greater; }
  bool operator>(const Value& other) const { return compare(other) == std::strong_ordering::greater; }
  bool operator>=(const Value& other) const { return compare(other) != std::strong_ordering::less; }

  /// Render for logs, fingerprints and test failure messages. Strings are
  /// single-quoted with quote doubling, so the rendering is injective.
  std::string ToString() const;

  /// Stable 64-bit hash, consistent with operator== (ints and doubles with
  /// equal numeric value hash alike).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace qc
