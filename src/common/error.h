// Error types shared across the query-cache libraries.
//
// Following the C++ Core Guidelines (E.2), errors that a caller cannot
// reasonably be expected to handle locally are reported as exceptions.
// Each subsystem throws a subclass of `qc::Error` so callers can catch at
// the granularity they care about.
#pragma once

#include <stdexcept>
#include <string>

namespace qc {

/// Base class for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on malformed SQL text (lexing/parsing failures).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Raised when a parsed query cannot be resolved against the catalog
/// (unknown table/column, type mismatch, unbound parameter).
class BindError : public Error {
 public:
  explicit BindError(const std::string& what) : Error("bind error: " + what) {}
};

/// Raised on storage-layer misuse (unknown row id, duplicate table, ...).
class StorageError : public Error {
 public:
  explicit StorageError(const std::string& what) : Error("storage error: " + what) {}
};

/// Raised on cache-layer misuse or I/O failure (disk store paths, ...).
class CacheError : public Error {
 public:
  explicit CacheError(const std::string& what) : Error("cache error: " + what) {}
};

}  // namespace qc
