// Deterministic pseudo-random source for workload generation.
//
// All experiment code draws randomness through this wrapper so that runs
// are reproducible given a seed (benches print their seeds).
#pragma once

#include <cstdint>
#include <random>

namespace qc {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool Chance(double p) { return UniformReal() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qc
