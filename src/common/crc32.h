// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding spill
// files and other on-disk records against torn writes and bit rot.
//
// @thread_safety Pure functions over an immutable constexpr table; safe
// from any thread.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qc {

namespace detail {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace detail

/// Incremental update: feed `crc` the previous return value (or 0 to
/// start) to checksum data arriving in pieces.
inline uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = detail::kCrc32Table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline uint32_t Crc32(std::string_view data) {
  return Crc32Update(0, data.data(), data.size());
}

}  // namespace qc
