#include "common/value.h"

#include <cmath>
#include <functional>
#include <ostream>
#include <sstream>

namespace qc {

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0: return ValueType::kNull;
    case 1: return ValueType::kInt;
    case 2: return ValueType::kDouble;
    default: return ValueType::kString;
  }
}

double Value::numeric() const {
  if (is_int()) return static_cast<double>(as_int());
  return as_double();
}

namespace {

// Rank used to order values of different type classes: NULL < numeric < string.
int TypeRank(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return 0;
    case ValueType::kInt:
    case ValueType::kDouble: return 1;
    case ValueType::kString: return 2;
  }
  return 3;
}

std::strong_ordering OrderDoubles(double a, double b) {
  // Values never hold NaN (the storage layer rejects it), so partial order
  // collapses to total order.
  if (a < b) return std::strong_ordering::less;
  if (a > b) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

}  // namespace

std::strong_ordering Value::compare(const Value& other) const {
  const int lr = TypeRank(*this), rr = TypeRank(other);
  if (lr != rr) return lr <=> rr;
  switch (type()) {
    case ValueType::kNull:
      return std::strong_ordering::equal;
    case ValueType::kInt:
      if (other.is_int()) return as_int() <=> other.as_int();
      return OrderDoubles(numeric(), other.numeric());
    case ValueType::kDouble:
      return OrderDoubles(numeric(), other.numeric());
    case ValueType::kString:
      return as_string().compare(other.as_string()) <=> 0;
  }
  return std::strong_ordering::equal;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << as_double();
      return os.str();
    }
    case ValueType::kString: {
      std::string out;
      out.reserve(as_string().size() + 2);
      out.push_back('\'');
      for (char c : as_string()) {
        if (c == '\'') out.push_back('\'');
        out.push_back(c);
      }
      out.push_back('\'');
      return out;
    }
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt: {
      // Hash ints through double when they are exactly representable so
      // Value(2) and Value(2.0), which compare equal, hash alike.
      const int64_t i = as_int();
      const double d = static_cast<double>(i);
      if (static_cast<int64_t>(d) == i) return std::hash<double>{}(d);
      return std::hash<int64_t>{}(i);
    }
    case ValueType::kDouble:
      return std::hash<double>{}(as_double());
    case ValueType::kString:
      return std::hash<std::string>{}(as_string());
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace qc
